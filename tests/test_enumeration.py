"""Butterfly/wedge/bloom enumeration and the Lemma 3 uniqueness property."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.butterfly.enumeration import (
    bloom_of_butterfly,
    butterflies_containing_edge,
    enumerate_butterflies,
    enumerate_priority_obeyed_wedges,
    enumerate_wedges,
    reference_blooms,
)
from repro.graph.generators import complete_biclique, erdos_renyi_bipartite
from repro.utils.priority import vertex_priorities
from tests.conftest import bipartite_graphs


class TestButterflies:
    def test_canonical_form(self, medium_random):
        for u, v, w, x in enumerate_butterflies(medium_random):
            assert u < w and v < x
            for a, b in ((u, v), (u, x), (w, v), (w, x)):
                assert medium_random.has_edge(a, b)

    def test_no_duplicates(self, medium_random):
        seen = list(enumerate_butterflies(medium_random))
        assert len(seen) == len(set(seen))

    def test_count_matches_k22(self):
        g = complete_biclique(3, 3)
        assert len(list(enumerate_butterflies(g))) == 9

    def test_butterflies_containing_edge(self, figure4):
        # (u2, v1) is edge e5: in B0* twice and B1* once -> 3 butterflies
        found = butterflies_containing_edge(figure4, 2, 1)
        assert len(found) == 3
        for bf in found:
            u, v, w, x = bf
            assert (2 in (u, w)) and (1 in (v, x))

    def test_butterflies_containing_edge_unique(self, medium_random):
        g = medium_random
        u, v = g.edge_endpoints(0)
        found = butterflies_containing_edge(g, u, v)
        assert len(found) == len(set(found))


class TestWedges:
    def test_wedge_count_formula(self):
        # number of wedges = sum over middle vertices of d*(d-1)
        g = complete_biclique(3, 2)
        wedges = list(enumerate_wedges(g))
        degrees = g.degrees()
        assert len(wedges) == int(sum(d * (d - 1) for d in degrees))

    def test_priority_obeyed_subset(self, medium_random):
        prio = vertex_priorities(medium_random.degrees())
        all_wedges = set(enumerate_wedges(medium_random))
        obeyed = list(enumerate_priority_obeyed_wedges(medium_random))
        for start, mid, end in obeyed:
            assert (start, mid, end) in all_wedges
            assert prio[start] > prio[mid] and prio[start] > prio[end]

    def test_priority_obeyed_bound(self, medium_random):
        # Lemma 6: #priority-obeyed wedges <= sum over edges of min degree
        g = medium_random
        obeyed = sum(1 for _ in enumerate_priority_obeyed_wedges(g))
        bound = sum(
            min(g.degree_upper(u), g.degree_lower(v)) for u, v in g.edges()
        )
        assert obeyed <= bound


class TestBloomsLemma3:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_butterfly_in_exactly_one_bloom(self, seed):
        g = erdos_renyi_bipartite(10, 10, 50, seed=seed)
        prio = vertex_priorities(g.degrees())
        blooms = reference_blooms(g, priorities=prio)
        for bf in enumerate_butterflies(g):
            anchor, partner = bloom_of_butterfly(g, bf, priorities=prio)
            assert (anchor, partner) in blooms
            middles = blooms[(anchor, partner)]
            u, v, w, x = bf
            gids = {
                g.gid_of_upper(u), g.gid_of_upper(w),
                g.gid_of_lower(v), g.gid_of_lower(x),
            }
            non_dominant = gids - {anchor, partner}
            assert non_dominant <= set(middles)

    def test_bloom_butterfly_totals(self, medium_random):
        # sum over blooms of C(k, 2) equals the butterfly count (Lemma 1+3)
        blooms = reference_blooms(medium_random)
        total = sum(len(m) * (len(m) - 1) // 2 for m in blooms.values())
        assert total == len(list(enumerate_butterflies(medium_random)))

    def test_bloom_anchor_priority_dominates(self, medium_random):
        prio = vertex_priorities(medium_random.degrees())
        for (anchor, partner), middles in reference_blooms(medium_random).items():
            assert prio[anchor] > prio[partner]
            for mid in middles:
                assert prio[anchor] > prio[mid]


@settings(max_examples=40, deadline=None)
@given(bipartite_graphs())
def test_lemma3_property(graph):
    """Each butterfly maps to exactly one maximal priority-obeyed bloom."""
    prio = vertex_priorities(graph.degrees())
    blooms = reference_blooms(graph, priorities=prio)
    count_via_blooms = sum(len(m) * (len(m) - 1) // 2 for m in blooms.values())
    butterflies = list(enumerate_butterflies(graph))
    assert count_via_blooms == len(butterflies)
    owners = [bloom_of_butterfly(graph, bf, priorities=prio) for bf in butterflies]
    assert all(key in blooms for key in owners)

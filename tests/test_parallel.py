"""Process-parallel butterfly counting."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_edge
from repro.butterfly.parallel import count_per_edge_parallel
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import chung_lu_bipartite, erdos_renyi_bipartite


def test_matches_serial_small():
    g = erdos_renyi_bipartite(20, 20, 150, seed=1)
    np.testing.assert_array_equal(
        count_per_edge_parallel(g, workers=2), count_per_edge(g)
    )


def test_matches_serial_skewed():
    g = chung_lu_bipartite(300, 30, 1500, exponent_upper=2.4,
                           exponent_lower=1.8, seed=2)
    np.testing.assert_array_equal(
        count_per_edge_parallel(g, workers=3, chunks_per_worker=2),
        count_per_edge(g),
    )


def test_single_worker_fallback():
    g = erdos_renyi_bipartite(10, 10, 50, seed=3)
    np.testing.assert_array_equal(
        count_per_edge_parallel(g, workers=1), count_per_edge(g)
    )


def test_empty_graph():
    g = BipartiteGraph(0, 0)
    assert count_per_edge_parallel(g, workers=2).shape == (0,)


def test_invalid_workers():
    g = BipartiteGraph(1, 1, [(0, 0)])
    with pytest.raises(ValueError):
        count_per_edge_parallel(g, workers=0)

"""White-box tests of BiT-PC's iteration machinery."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_edge
from repro.core import bit_bu_plus_plus, bit_pc
from repro.core.bit_pc import largest_possible_bitruss
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    chung_lu_bipartite,
    complete_biclique,
    erdos_renyi_bipartite,
    planted_bloom,
    union_graphs,
)
from repro.index.be_index import BEIndex
from tests.conftest import assert_phi_equal


class TestCompressedPeel:
    def test_assigned_edges_keep_blooms_alive(self):
        """Compressed index: assigned edges still contribute wedge counts.

        Build a 4-bloom, mark one wedge pair assigned; the remaining edges
        must still see the butterflies they share with the assigned pair.
        """
        g = planted_bloom(4)
        assigned = np.zeros(g.num_edges, dtype=bool)
        # edges (0,0) and (1,0) form the wedge through lower vertex 0
        assigned[g.edge_id(0, 0)] = True
        assigned[g.edge_id(1, 0)] = True
        index = BEIndex.build(g, assigned=assigned)
        bloom = next(iter(index.blooms.values()))
        assert bloom.k == 4  # all wedges counted, assigned included
        for eid in range(g.num_edges):
            assert index.support[eid] == 3  # Lemma 2 with k = 4

    def test_detaching_never_touches_assigned(self):
        g = planted_bloom(4)
        assigned = np.zeros(g.num_edges, dtype=bool)
        assigned[g.edge_id(0, 0)] = True
        assigned[g.edge_id(1, 0)] = True
        index = BEIndex.build(g, assigned=assigned)
        frozen = int(index.support[g.edge_id(0, 0)])
        removal_counts = {}
        live = g.edge_id(0, 1)
        index.detach_edge(live, removal_counts, floor=0)
        index.apply_bloom_batch(removal_counts, floor=0)
        assert int(index.support[g.edge_id(0, 0)]) == frozen


class TestIterationBehaviour:
    def test_disconnected_levels(self):
        # one deep component + one shallow component exercise multiple
        # epsilon iterations with carried-over unassigned edges
        deep = complete_biclique(4, 4).to_edge_list()
        shallow = [(u + 4, v + 4) for u, v in complete_biclique(2, 2).to_edge_list()]
        g = union_graphs(6, 6, [deep, shallow])
        expected = bit_bu_plus_plus(g).phi
        for tau in (0.2, 0.5, 1.0):
            assert_phi_equal(bit_pc(g, tau=tau).phi, expected, f"tau={tau}")

    def test_iterations_recorded(self):
        g = chung_lu_bipartite(150, 20, 700, exponent_upper=2.5,
                               exponent_lower=1.7, seed=12)
        result = bit_pc(g, tau=0.1)
        assert result.stats.iterations >= 2
        assert result.stats.parameters["prefilter"] == "fixpoint"

    def test_timings_cover_all_phases(self):
        g = erdos_renyi_bipartite(15, 15, 90, seed=1)
        result = bit_pc(g)
        for phase in ("counting", "candidate extraction",
                      "index construction", "peeling"):
            assert phase in result.stats.timings

    def test_single_edge_graph(self):
        g = BipartiteGraph(1, 1, [(0, 0)])
        result = bit_pc(g)
        assert result.phi.tolist() == [0]
        assert result.stats.parameters["k_max"] == 0


class TestKmaxEdgeCases:
    def test_kmax_zero_when_no_butterflies(self):
        g = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        assert largest_possible_bitruss(count_per_edge(g)) == 0

    def test_kmax_with_uniform_supports(self):
        g = complete_biclique(4, 4)
        support = count_per_edge(g)
        # 16 edges of support 9 -> h-index min(16, 9) = 9
        assert largest_possible_bitruss(support) == 9

    def test_kmax_never_below_phimax_on_skew(self):
        g = chung_lu_bipartite(200, 15, 800, exponent_upper=2.5,
                               exponent_lower=1.7, seed=4)
        support = count_per_edge(g)
        phi = bit_bu_plus_plus(g).phi
        assert largest_possible_bitruss(support) >= int(phi.max())

"""CSR layer tests: zero-copy slices, legacy-view agreement, batch peeling.

Covers the two contracts of the CSR refactor:

* the CSR arrays, the zero-copy neighbour slices and the legacy list views
  all describe the same graph (checked against an independently built
  adjacency on random graphs);
* the vectorized batch-peeling engine produces bitwise-identical bitruss
  numbers to scalar BiT-BU on the fixture suite, through both its
  vectorized and scalar-fallback paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bit_bu import bit_bu
from repro.core.bit_bu_batch import bit_bu_csr
from repro.core.peeling_engine import CSRPeelingEngine
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    affiliation_bipartite,
    chung_lu_bipartite,
    erdos_renyi_bipartite,
    nested_communities,
)
from repro.index.be_index import BEIndex
from tests.conftest import bipartite_graphs


def reference_adjacency(graph):
    """Layer adjacency rebuilt edge by edge, independent of the CSR."""
    adj_u = [[] for _ in range(graph.num_upper)]
    eids_u = [[] for _ in range(graph.num_upper)]
    adj_l = [[] for _ in range(graph.num_lower)]
    eids_l = [[] for _ in range(graph.num_lower)]
    for eid, (u, v) in enumerate(graph.edges()):
        adj_u[u].append(v)
        eids_u[u].append(eid)
        adj_l[v].append(u)
        eids_l[v].append(eid)
    return adj_u, eids_u, adj_l, eids_l


RANDOM_GRAPHS = [
    erdos_renyi_bipartite(30, 25, 220, seed=99),
    erdos_renyi_bipartite(1, 40, 40, seed=3),
    chung_lu_bipartite(60, 60, 400, seed=7),
    affiliation_bipartite(40, 40, 8, community_upper=6, community_lower=6, seed=2),
    BipartiteGraph(3, 3, []),
]


class TestCSRAgreesWithLegacyAccessors:
    @pytest.mark.parametrize("graph", RANDOM_GRAPHS, ids=range(len(RANDOM_GRAPHS)))
    def test_neighbor_slices_match_reference(self, graph):
        adj_u, eids_u, adj_l, eids_l = reference_adjacency(graph)
        for u in range(graph.num_upper):
            assert graph.neighbors_of_upper(u).tolist() == adj_u[u]
            assert graph.edges_of_upper(u).tolist() == eids_u[u]
            assert graph.degree_upper(u) == len(adj_u[u])
        for v in range(graph.num_lower):
            assert graph.neighbors_of_lower(v).tolist() == adj_l[v]
            assert graph.edges_of_lower(v).tolist() == eids_l[v]
            assert graph.degree_lower(v) == len(adj_l[v])

    @pytest.mark.parametrize("graph", RANDOM_GRAPHS, ids=range(len(RANDOM_GRAPHS)))
    def test_gid_csr_matches_layer_csr(self, graph):
        indptr, indices, eids = graph.csr_gid()
        n_l = graph.num_lower
        for v in range(n_l):
            row = slice(indptr[v], indptr[v + 1])
            assert (indices[row] - n_l).tolist() == graph.neighbors_of_lower(v).tolist()
            assert eids[row].tolist() == graph.edges_of_lower(v).tolist()
        for u in range(graph.num_upper):
            g = n_l + u
            row = slice(indptr[g], indptr[g + 1])
            assert indices[row].tolist() == graph.neighbors_of_upper(u).tolist()
            assert eids[row].tolist() == graph.edges_of_upper(u).tolist()

    @pytest.mark.parametrize("graph", RANDOM_GRAPHS, ids=range(len(RANDOM_GRAPHS)))
    def test_adjacency_by_gid_view_matches_csr(self, graph):
        adj, adj_eids = graph.adjacency_by_gid()
        indptr, indices, eids = graph.csr_gid()
        for g in range(graph.num_vertices):
            row = slice(indptr[g], indptr[g + 1])
            assert adj[g] == indices[row].tolist()
            assert adj_eids[g] == eids[row].tolist()

    @pytest.mark.parametrize("graph", RANDOM_GRAPHS, ids=range(len(RANDOM_GRAPHS)))
    def test_sorted_csr_is_priority_sorted_row_permutation(self, graph):
        prio = graph.priorities()
        indptr, indices, eids = graph.csr_gid_sorted()
        base_indptr, base_indices, base_eids = graph.csr_gid()
        assert indptr is base_indptr
        for g in range(graph.num_vertices):
            row = slice(indptr[g], indptr[g + 1])
            row_prios = prio[indices[row]]
            assert (np.diff(row_prios) >= 0).all()
            assert sorted(indices[row].tolist()) == sorted(base_indices[row].tolist())
            assert sorted(eids[row].tolist()) == sorted(base_eids[row].tolist())
            # indices and eids are permuted together
            for nbr, eid in zip(indices[row].tolist(), eids[row].tolist()):
                u, v = graph.edge_endpoints(eid)
                assert {graph.gid_of_upper(u), graph.gid_of_lower(v)} == {g, nbr}

    def test_shared_arrays_are_read_only(self, medium_random):
        g = medium_random
        for arr in (
            g.edge_upper,
            g.edge_lower,
            *g.csr_upper(),
            *g.csr_lower(),
            *g.csr_gid(),
        ):
            with pytest.raises(ValueError):
                arr[0] = 0

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_csr_roundtrip_property(self, graph):
        graph.validate()
        indptr, indices, eids = graph.csr_gid()
        assert int(indptr[-1]) == 2 * graph.num_edges
        # every edge appears exactly once per endpoint
        assert np.bincount(eids, minlength=graph.num_edges).tolist() == [2] * graph.num_edges


class TestBatchPeelingExactness:
    def _assert_identical(self, graph):
        expected = bit_bu(graph).phi
        vectorized = bit_bu_csr(graph, scalar_cutoff=0).phi
        scalar = bit_bu_csr(graph, scalar_cutoff=10**9).phi
        hybrid = bit_bu_csr(graph).phi
        np.testing.assert_array_equal(expected, vectorized)
        np.testing.assert_array_equal(expected, scalar)
        np.testing.assert_array_equal(expected, hybrid)

    def test_identical_on_figure1(self, figure1):
        self._assert_identical(figure1)

    def test_identical_on_figure4(self, figure4):
        self._assert_identical(figure4)

    def test_identical_on_medium_random(self, medium_random):
        self._assert_identical(medium_random)

    def test_identical_on_dense_nested(self):
        graph = nested_communities(
            [(30, 40, 0.4), (12, 16, 0.7), (5, 7, 1.0)], noise_edges=60, seed=5
        )
        self._assert_identical(graph)

    def test_identical_on_skewed(self):
        self._assert_identical(chung_lu_bipartite(80, 80, 600, seed=13))

    def test_empty_graph(self):
        graph = BipartiteGraph(4, 4, [])
        assert bit_bu_csr(graph).phi.tolist() == []

    @given(bipartite_graphs())
    @settings(max_examples=25, deadline=None)
    def test_identical_property(self, graph):
        np.testing.assert_array_equal(
            bit_bu(graph).phi, bit_bu_csr(graph, scalar_cutoff=3).phi
        )


class TestEngineInternals:
    def test_engine_supports_match_be_index(self, medium_random):
        engine = CSRPeelingEngine.build(medium_random)
        index = BEIndex.build(medium_random)
        np.testing.assert_array_equal(engine.support, index.support)

    def test_engine_size_components_match_be_index(self, medium_random):
        engine = CSRPeelingEngine.build(medium_random)
        index = BEIndex.build(medium_random)
        blooms_e, edges_e, links_e = engine.size_components()
        blooms_i, edges_i, links_i = index.size_components()
        assert blooms_e == blooms_i
        assert edges_e == edges_i
        assert links_e == links_i

    def test_stats_plumbing(self, figure4):
        from repro.utils.stats import UpdateCounter

        counter = UpdateCounter()
        result = bit_bu_csr(figure4, counter=counter)
        assert result.stats.algorithm == "BiT-BU-CSR"
        assert "index construction" in result.stats.timings
        assert "peeling" in result.stats.timings
        assert counter.total > 0
        assert result.stats.index_peak_bytes > 0

    def test_registered_in_api(self, figure4):
        from repro.core.api import ALGORITHMS, bitruss_decomposition

        assert ALGORITHMS["csr"] == "bit-bu-csr"
        result = bitruss_decomposition(figure4, algorithm="bu-csr")
        np.testing.assert_array_equal(result.phi, bit_bu(figure4).phi)

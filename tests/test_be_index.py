"""BE-Index construction and edge-removal semantics (paper Section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.butterfly.counting import count_per_edge
from repro.butterfly.enumeration import reference_blooms
from repro.graph.generators import (
    erdos_renyi_bipartite,
    paper_figure4_graph,
    planted_bloom,
)
from repro.index.be_index import BEIndex
from repro.utils.priority import vertex_priorities
from tests.conftest import bipartite_graphs


class TestConstruction:
    def test_supports_match_counting(self, medium_random):
        index = BEIndex.build(medium_random)
        np.testing.assert_array_equal(
            index.support, count_per_edge(medium_random)
        )

    def test_blooms_match_reference(self, medium_random):
        g = medium_random
        prio = vertex_priorities(g.degrees())
        index = BEIndex.build(g, priorities=prio)
        expected = reference_blooms(g, priorities=prio)
        got = {
            (b.anchor, b.partner): b.k for b in index.blooms.values()
        }
        assert got == {key: len(mids) for key, mids in expected.items()}

    def test_figure4_index_structure(self):
        # Under the strict Definition 7 priority, the full Figure 4(a) graph
        # (pendants included) gives d(u2) = d(v1) = 4 and the upper vertex
        # wins the id tie-break, so H2's butterflies split across three
        # 2-blooms anchored at u2/v1 rather than the single 3-bloom drawn in
        # the paper's Figure 6 (which matches the pendant-free graph — see
        # the next test).  Lemma 3 still holds: 4 blooms x 1 butterfly each.
        g = paper_figure4_graph()
        index = BEIndex.build(g)
        assert index.num_blooms == 4
        assert all(b.k == 2 for b in index.blooms.values())
        assert sum(b.butterfly_count for b in index.blooms.values()) == 4
        # supports are structural and match the paper regardless of the
        # bloom decomposition
        assert index.support.tolist() == [2, 2, 2, 2, 2, 3, 1, 1, 1, 0, 0]

    def test_paper_figure6_index_on_pendant_free_graph(self):
        # Dropping the two pendant edges reproduces the paper's Figure 6
        # exactly: B0* is the 3-bloom on {u0,u1,u2} x {v0,v1} anchored at v1
        # (now the unique degree-4 vertex), B1* the 2-bloom on
        # {u2,u3} x {v1,v2}.
        from repro.graph.bipartite import BipartiteGraph

        g = BipartiteGraph(4, 5, [
            (0, 0), (0, 1), (1, 0), (1, 1),
            (2, 0), (2, 1), (2, 2), (3, 1), (3, 2),
        ])
        index = BEIndex.build(g)
        assert index.num_blooms == 2
        counts = sorted(b.butterfly_count for b in index.blooms.values())
        assert counts == [1, 3]
        big = next(b for b in index.blooms.values() if b.k == 3)
        small = next(b for b in index.blooms.values() if b.k == 2)
        # both blooms are anchored at v1 (gid 1), dominant layer = lower
        assert big.anchor == 1 and small.anchor == 1
        # twins inside B0*: (e0,e1), (e2,e3), (e4,e5) — exactly Figure 6
        assert big.twin[0] == 1 and big.twin[1] == 0
        assert big.twin[2] == 3 and big.twin[3] == 2
        assert big.twin[4] == 5 and big.twin[5] == 4
        # twins inside B1*: (e5,e6), (e7,e8)
        assert small.twin[5] == 6 and small.twin[6] == 5
        assert small.twin[7] == 8 and small.twin[8] == 7

    def test_twin_pairing_lemma4(self, medium_random):
        index = BEIndex.build(medium_random)
        for bloom in index.blooms.values():
            assert len(bloom.twin) == 2 * bloom.k
            for edge, twin in bloom.twin.items():
                assert bloom.twin[twin] == edge
                assert edge != twin

    def test_twins_form_wedges(self, medium_random):
        g = medium_random
        index = BEIndex.build(g)
        for bloom in index.blooms.values():
            for edge, twin in bloom.twin.items():
                u1, v1 = g.edge_endpoints(edge)
                u2, v2 = g.edge_endpoints(twin)
                # the twin shares exactly the wedge's middle vertex
                assert (u1 == u2) != (v1 == v2)

    def test_support_equals_bloom_contributions_lemma2(self, medium_random):
        index = BEIndex.build(medium_random)
        recomputed = np.zeros_like(index.support)
        for bloom in index.blooms.values():
            for edge in bloom.twin:
                recomputed[edge] += bloom.k - 1
        np.testing.assert_array_equal(recomputed, index.support)

    def test_index_size_lemma6_bound(self, medium_random):
        g = medium_random
        index = BEIndex.build(g)
        bound = sum(
            min(g.degree_upper(u), g.degree_lower(v)) for u, v in g.edges()
        )
        # each priority-obeyed wedge contributes at most 2 links
        assert index.num_links <= 2 * bound

    def test_planted_bloom_single_bloom(self):
        g = planted_bloom(7)
        index = BEIndex.build(g)
        assert index.num_blooms == 1
        bloom = next(iter(index.blooms.values()))
        assert bloom.k == 7
        assert bloom.butterfly_count == 21

    def test_validate_passes(self, medium_random):
        BEIndex.build(medium_random).validate()

    def test_validate_detects_broken_backlink(self, medium_random):
        index = BEIndex.build(medium_random)
        bloom = next(iter(index.blooms.values()))
        edge = next(iter(bloom.twin))
        index.edge_blooms[edge].discard(bloom.bloom_id)
        with pytest.raises(AssertionError):
            index.validate()


class TestCompressedConstruction:
    def test_assigned_edges_not_indexed(self, medium_random):
        g = medium_random
        assigned = np.zeros(g.num_edges, dtype=bool)
        assigned[::3] = True
        index = BEIndex.build(g, assigned=assigned)
        for eid in np.nonzero(assigned)[0]:
            assert int(eid) not in index.edge_blooms
            for bloom in index.blooms.values():
                assert int(eid) not in bloom.twin

    def test_supports_unchanged_by_compression(self, medium_random):
        g = medium_random
        assigned = np.zeros(g.num_edges, dtype=bool)
        assigned[: g.num_edges // 2] = True
        full = BEIndex.build(g)
        compressed = BEIndex.build(g, assigned=assigned)
        # bloom structure and supports are identical; only L(I)/E(I) shrink
        np.testing.assert_array_equal(full.support, compressed.support)
        assert full.num_blooms == compressed.num_blooms
        assert compressed.num_links <= full.num_links

    def test_all_assigned_empty_index_edges(self, medium_random):
        assigned = np.ones(medium_random.num_edges, dtype=bool)
        index = BEIndex.build(medium_random, assigned=assigned)
        assert index.num_indexed_edges == 0


class TestRemoveEdge:
    def _peel_invariant_check(self, g):
        """Peel min-support edges one by one; check the truss invariant.

        At every step, for each remaining edge: the stored support is at
        least the true support in the remaining graph, with equality
        whenever the stored support exceeds the current peel level.
        """
        index = BEIndex.build(g)
        alive = set(range(g.num_edges))
        level = 0
        while alive:
            eid = min(alive, key=lambda e: int(index.support[e]))
            level = max(level, int(index.support[eid]))
            index.remove_edge(eid)
            alive.discard(eid)
            index.validate()
            sub, orig = g.subgraph_from_edge_ids(sorted(alive))
            true_support = count_per_edge(sub)
            for sub_eid, old_eid in enumerate(orig):
                stored = int(index.support[old_eid])
                true = int(true_support[sub_eid])
                assert stored >= true
                if stored > level:
                    assert stored == true

    @pytest.mark.parametrize("seed", range(4))
    def test_full_peel_invariant_random(self, seed):
        g = erdos_renyi_bipartite(7, 7, 28, seed=seed)
        self._peel_invariant_check(g)

    def test_full_peel_invariant_figure4(self, figure4):
        self._peel_invariant_check(figure4)

    def test_remove_min_edge_exact_update(self, medium_random):
        # removing a globally minimal edge updates every strictly-above
        # neighbour to its exact new support
        g = medium_random
        index = BEIndex.build(g)
        support_before = index.support.copy()
        eid = int(np.argmin(index.support))
        index.remove_edge(eid)
        remaining = [e for e in range(g.num_edges) if e != eid]
        sub, orig = g.subgraph_from_edge_ids(remaining)
        true_support = count_per_edge(sub)
        for sub_eid, old_eid in enumerate(orig):
            if support_before[old_eid] > support_before[eid]:
                assert int(index.support[old_eid]) == int(true_support[sub_eid])

    def test_remove_edge_shrinks_bloom(self):
        g = planted_bloom(5)
        index = BEIndex.build(g)
        bloom = next(iter(index.blooms.values()))
        assert bloom.k == 5
        index.remove_edge(0)
        assert bloom.k == 4
        assert bloom.butterfly_count == 6

    def test_bloom_pruned_at_k1(self):
        g = planted_bloom(2)  # one butterfly
        index = BEIndex.build(g)
        assert index.num_blooms == 1
        index.remove_edge(0)
        # the 2-bloom degenerates to a single wedge and is dropped entirely
        assert index.num_blooms == 0
        assert index.num_links == 0

    def test_remove_untracked_edge_is_noop(self, figure4):
        index = BEIndex.build(figure4)
        # pendant edges carry no butterflies and are not in L(I)
        pendant = figure4.edge_id(2, 3)
        before = index.support.copy()
        index.remove_edge(pendant)
        np.testing.assert_array_equal(before, index.support)

    def test_update_counter_records(self, medium_random):
        from repro.utils.stats import UpdateCounter

        index = BEIndex.build(medium_random)
        counter = UpdateCounter()
        eid = int(np.argmin(index.support))
        index.remove_edge(eid, counter=counter)
        assert counter.total >= 0  # counted only strictly-updated edges

    def test_on_change_callback(self, medium_random):
        index = BEIndex.build(medium_random)
        eid = int(np.argmin(index.support))
        changed = {}
        index.remove_edge(eid, on_change=lambda e, v: changed.__setitem__(e, v))
        for e, v in changed.items():
            assert int(index.support[e]) == v


class TestBatchOperations:
    def test_detach_and_apply_matches_sequential(self):
        # A batch of equal-support edges through detach/apply must leave the
        # same supports as sequential Algorithm 2 removals (both floored).
        g = erdos_renyi_bipartite(8, 8, 40, seed=11)
        index_batch = BEIndex.build(g)
        index_seq = BEIndex.build(g)

        start = int(index_batch.support.min())
        batch = [
            e for e in range(g.num_edges) if index_batch.support[e] == start
        ]
        removal_counts = {}
        for eid in batch:
            index_batch.detach_edge(eid, removal_counts, floor=start)
        index_batch.apply_bloom_batch(removal_counts, floor=start)
        index_batch.validate()

        for eid in batch:
            index_seq.remove_edge(eid)
        index_seq.validate()

        alive = [e for e in range(g.num_edges) if e not in set(batch)]
        for e in alive:
            assert index_batch.support[e] == index_seq.support[e]

    def test_detach_counts_pairs_once(self):
        g = planted_bloom(4)
        index = BEIndex.build(g)
        bloom = next(iter(index.blooms.values()))
        removal_counts = {}
        # remove a twin pair: both ends of one wedge -> one pair counted
        e = next(iter(bloom.twin))
        t = bloom.twin[e]
        index.detach_edge(e, removal_counts, floor=0)
        index.detach_edge(t, removal_counts, floor=0)
        assert removal_counts == {bloom.bloom_id: 1}

    def test_apply_bloom_batch_shrinks_k(self):
        g = planted_bloom(6)
        index = BEIndex.build(g)
        bloom = next(iter(index.blooms.values()))
        removal_counts = {}
        edges = list(bloom.twin)
        index.detach_edge(edges[0], removal_counts, floor=0)
        index.apply_bloom_batch(removal_counts, floor=0)
        assert bloom.k == 5


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs(max_upper=7, max_lower=7, max_edges=30))
def test_build_support_property(graph):
    index = BEIndex.build(graph)
    np.testing.assert_array_equal(index.support, count_per_edge(graph))
    index.validate()
    # links come in pairs within blooms, 2k links per k-wedge bloom
    for bloom in index.blooms.values():
        assert len(bloom.twin) == 2 * bloom.k

"""The live tracing plane: span recording, trace store, /debug endpoints.

Covers the :mod:`repro.obs.spans` flight recorder (ring-buffer bounds,
deterministic head sampling, tail promotion, concurrent-writer safety),
trace-id context primitives under exceptions and nesting, the
:mod:`repro.obs.store` retention/waterfall/Chrome-export surfaces, the
server's ``/debug/*`` plane and OpenMetrics exemplars, worker-span
grafting across the process boundary, and the always-on overhead
contract (< 3% of a ``bit-bu-csr`` decompose).
"""

import asyncio
import json
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.graph.generators import erdos_renyi_bipartite, paper_figure4_graph
from repro.obs import metrics as obs_metrics
from repro.obs import phases as obs_phases
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.spans import Span, SpanRecorder
from repro.obs.store import TraceRecord, TraceStore
from repro.server import ArtifactRegistry, BitrussServer
from repro.service import build_artifact


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    """Each test starts with a pristine global recorder and no trace."""
    recorder = obs_spans.get_recorder()
    saved = (recorder.sample, recorder.slow_s)
    recorder.reset()
    recorder.configure(sample=1.0, slow_s=0.25)
    obs_phases.enable(False)
    obs_phases.reset()
    obs_metrics.reset_registry()
    yield
    recorder.reset()
    recorder.configure(sample=saved[0], slow_s=saved[1])
    obs_phases.enable(False)
    obs_phases.reset()
    obs_metrics.reset_registry()


# -------------------------------------------------------------------- spans


class TestSpan:
    def test_finish_stamps_status_and_duration(self):
        span = Span("t1", "op")
        assert span.status == "open"
        span.finish()
        assert span.status == "ok" and span.error is None
        assert span.end_ns >= span.start_ns
        assert span.duration_ns == span.end_ns - span.start_ns

    def test_finish_with_error_captures_type_and_message(self):
        span = Span("t1", "op")
        span.finish(error=ValueError("boom"))
        assert span.status == "error"
        assert span.error == "ValueError: boom"

    def test_dict_round_trip_preserves_identity(self):
        span = Span("t1", "op", parent_id="aaaa", attrs={"k": 1})
        span.finish()
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()


class TestSpanRecorder:
    @staticmethod
    def _finished(trace_id, name="op", parent_id=None):
        span = Span(trace_id, name, parent_id=parent_id)
        span.finish()
        return span

    def test_ring_keeps_newest_at_capacity(self):
        rec = SpanRecorder(capacity=4)
        for i in range(6):
            rec.record(self._finished("t", name=f"op{i}"))
        names = [s.name for s in rec.spans()]
        assert names == ["op2", "op3", "op4", "op5"]  # oldest first
        assert rec.stats()["recorded"] == 6

    def test_head_sampling_is_deterministic_and_calibrated(self):
        rec = SpanRecorder(sample=0.5)
        ids = [f"{i:016x}" for i in range(2000)]
        first = [rec.sample_trace(t) for t in ids]
        assert first == [rec.sample_trace(t) for t in ids]  # stable
        kept = sum(first)
        assert 800 < kept < 1200  # hash is calibrated, not a constant
        assert all(SpanRecorder(sample=1.0).sample_trace(t) for t in ids[:50])
        assert not any(SpanRecorder(sample=0.0).sample_trace(t) for t in ids[:50])

    def test_finish_trace_retains_sampled_traces(self):
        rec = SpanRecorder(sample=1.0)
        rec.record(self._finished("aa"))
        spans = rec.finish_trace("aa")
        assert spans is not None and len(spans) == 1
        assert rec.finish_trace("aa") is None  # popped exactly once
        assert rec.stats()["retained_traces"] == 1

    def test_tail_promotion_keeps_slow_unsampled_trace(self):
        rec = SpanRecorder(sample=0.0, slow_s=0.001)
        slow = Span("slow", "root")
        slow.end_ns = slow.start_ns + 5_000_000  # 5 ms > 1 ms threshold
        slow.status = "ok"
        rec.record(slow)
        retained = rec.finish_trace("slow")
        assert retained is not None and retained[0].name == "root"

        fast = self._finished("fast")
        rec.record(fast)
        assert rec.finish_trace("fast") is None  # under threshold: dropped
        stats = rec.stats()
        assert stats["retained_traces"] == 1
        assert stats["discarded_traces"] == 1

    def test_take_trace_pops_unconditionally(self):
        rec = SpanRecorder(sample=0.0, slow_s=0.0)
        rec.record(self._finished("w1"))
        assert len(rec.take_trace("w1")) == 1  # worker harvest ignores sampling
        assert rec.take_trace("w1") == []

    def test_per_trace_span_cap_counts_drops(self):
        rec = SpanRecorder(capacity=64, max_spans_per_trace=3)
        for _ in range(5):
            rec.record(self._finished("t"))
        assert len(rec.finish_trace("t")) == 3
        assert rec.stats()["dropped"] == 2

    def test_open_trace_cap_evicts_oldest(self):
        rec = SpanRecorder(max_open_traces=2)
        for tid in ("t1", "t2", "t3"):
            rec.record(self._finished(tid))
        assert rec.finish_trace("t1") is None  # evicted to admit t3
        assert rec.finish_trace("t3") is not None
        assert rec.stats()["evicted_traces"] == 1

    def test_concurrent_writers_lose_nothing_under_capacity(self):
        threads, per_thread = 8, 100
        rec = SpanRecorder(capacity=threads * per_thread)
        barrier = threading.Barrier(threads)

        def hammer(worker):
            barrier.wait()
            for i in range(per_thread):
                rec.record(
                    self._finished(f"t{worker}", name=f"w{worker}-{i}")
                )

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        ring = rec.spans()
        assert len(ring) == threads * per_thread  # nothing lost
        names = [s.name for s in ring]
        assert len(set(names)) == len(names)  # nothing duplicated
        stats = rec.stats()
        assert stats["recorded"] == threads * per_thread
        for w in range(threads):
            assert len(rec.finish_trace(f"t{w}")) == per_thread

    def test_concurrent_writers_over_capacity_keep_ring_exact(self):
        threads, per_thread, capacity = 8, 100, 64
        rec = SpanRecorder(capacity=capacity, max_spans_per_trace=1024)
        barrier = threading.Barrier(threads)

        def hammer(worker):
            barrier.wait()
            for i in range(per_thread):
                rec.record(self._finished("shared", name=f"w{worker}-{i}"))

        pool = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        ring = rec.spans()
        assert len(ring) == capacity  # full, never more
        assert len({s.name for s in ring}) == capacity  # distinct survivors
        assert rec.stats()["recorded"] == threads * per_thread


# ------------------------------------------------------- trace-id primitives


class TestTraceContextPrimitives:
    def test_trace_context_restores_on_exception(self):
        assert obs_trace.current_trace_id() is None
        with pytest.raises(RuntimeError):
            with obs_trace.trace_context("abc123"):
                assert obs_trace.current_trace_id() == "abc123"
                raise RuntimeError("boom")
        assert obs_trace.current_trace_id() is None

    def test_nested_contexts_restore_in_order(self):
        with obs_trace.trace_context("outer1"):
            with obs_trace.trace_context("inner1"):
                assert obs_trace.current_trace_id() == "inner1"
            assert obs_trace.current_trace_id() == "outer1"
        assert obs_trace.current_trace_id() is None

    def test_set_and_reset_tokens_nest(self):
        t1 = obs_trace.set_trace_id("first1")
        t2 = obs_trace.set_trace_id("second")
        assert obs_trace.current_trace_id() == "second"
        obs_trace.reset_trace_id(t2)
        assert obs_trace.current_trace_id() == "first1"
        obs_trace.reset_trace_id(t1)
        assert obs_trace.current_trace_id() is None

    def test_exception_inside_nested_context_unwinds_cleanly(self):
        with obs_trace.trace_context("keepme"):
            with pytest.raises(ValueError):
                with obs_trace.trace_context("fleeting"):
                    raise ValueError("x")
            assert obs_trace.current_trace_id() == "keepme"


# ---------------------------------------------------------------- span() API


class TestSpanApi:
    def test_outside_trace_is_shared_noop(self):
        assert obs_spans.span("a") is obs_spans.span("b")
        assert obs_spans.trace_span("a") is obs_spans.trace_span("b")

    def test_sample_zero_disables_even_inside_trace(self):
        obs_spans.configure(sample=0.0)
        with obs_trace.trace_context("abc123"):
            assert obs_spans.span("a") is obs_spans.span("b")
            assert obs_spans.trace_span("a") is obs_spans.trace_span("b")
        assert obs_spans.get_recorder().stats()["recorded"] == 0

    def test_nested_spans_are_parent_linked(self):
        rec = obs_spans.get_recorder()
        with obs_trace.trace_context("abc123"):
            with obs_spans.span("outer") as outer:
                with obs_spans.span("inner") as inner:
                    assert obs_spans.current_span() is inner
                assert obs_spans.current_span() is outer
        spans = rec.finish_trace("abc123")
        by_name = {s.name: s for s in spans}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_exception_marks_span_error_and_restores_cursor(self):
        rec = obs_spans.get_recorder()
        with obs_trace.trace_context("abc123"):
            with obs_spans.span("root"):
                with pytest.raises(KeyError):
                    with obs_spans.span("bad"):
                        raise KeyError("missing")
                assert obs_spans.current_span().name == "root"
        by_name = {s.name: s for s in rec.finish_trace("abc123")}
        assert by_name["bad"].status == "error"
        assert "KeyError" in by_name["bad"].error
        assert by_name["root"].status == "ok"

    def test_span_feeds_phase_tree_but_trace_span_does_not(self):
        obs_phases.enable(True)
        with obs_trace.trace_context("abc123"):
            with obs_spans.span("algo step"):
                with obs_spans.trace_span("plumbing"):
                    pass
        names = [c["name"] for c in obs_phases.tree()["children"]]
        assert names == ["algo step"]  # no phase node for the plumbing span

    def test_remote_child_parents_under_remote_span_id(self):
        rec = obs_spans.get_recorder()
        with obs_spans.remote_child("abc123", "feed0001"):
            with obs_spans.trace_span("worker:op"):
                pass
        (span,) = rec.take_trace("abc123")
        assert span.parent_id == "feed0001"
        assert obs_trace.current_trace_id() is None  # token restored

    def test_env_knobs_shape_the_recorder(self):
        script = (
            "from repro.obs import spans\n"
            "rec = spans.get_recorder()\n"
            "assert rec.sample == 0.25, rec.sample\n"
            "assert rec.capacity == 77, rec.capacity\n"
            "assert abs(rec.slow_s - 0.05) < 1e-9, rec.slow_s\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={
                "PYTHONPATH": "src",
                "REPRO_TRACE_SAMPLE": "0.25",
                "REPRO_TRACE_BUFFER": "77",
                "REPRO_TRACE_SLOW_MS": "50",
            },
            cwd=str(Path(__file__).parent.parent),
        )
        assert proc.returncode == 0


# -------------------------------------------------------------- trace store


def _make_spans(trace_id, *, duration_ms=1.0, endpoint="stats", dataset="d"):
    root = Span(trace_id, f"GET /{dataset}/{endpoint}")
    root.attrs.update({"endpoint": endpoint, "dataset": dataset})
    child = Span(trace_id, "work", parent_id=root.span_id)
    child.finish()
    root.end_ns = root.start_ns + int(duration_ms * 1e6)
    root.status = "ok"
    return [root, child]


class TestTraceStore:
    def test_recent_is_bounded_and_newest_first(self):
        store = TraceStore(recent=3, slowest=2)
        for i in range(5):
            store.add(_make_spans(f"{i:08x}"))
        recent = store.recent_traces()
        assert [r.trace_id for r in recent] == ["00000004", "00000003", "00000002"]

    def test_slowest_set_keeps_top_k_by_duration(self):
        store = TraceStore(recent=2, slowest=2)
        for i, ms in enumerate([5.0, 1.0, 9.0, 3.0, 7.0]):
            store.add(_make_spans(f"{i:08x}", duration_ms=ms))
        slowest = store.slowest_traces()
        assert [round(r.duration_ns / 1e6) for r in slowest] == [9, 7]

    def test_get_finds_evicted_recent_via_slowest(self):
        store = TraceStore(recent=1, slowest=4)
        slow = store.add(_make_spans("aaaa0000", duration_ms=50.0))
        for i in range(3):
            store.add(_make_spans(f"{i:08x}", duration_ms=1.0))
        assert store.get("aaaa0000") is slow

    def test_filters_and_rollups(self):
        store = TraceStore()
        store.add(_make_spans("a" * 8, endpoint="stats", dataset="d1"))
        store.add(_make_spans("b" * 8, endpoint="histogram", dataset="d1"))
        store.add(_make_spans("c" * 8, endpoint="stats", dataset="d2"))
        assert len(store.recent_traces(endpoint="stats")) == 2
        assert len(store.recent_traces(dataset="d1")) == 1 + 1
        assert len(store.recent_traces(endpoint="stats", dataset="d2")) == 1
        rollups = {(r["endpoint"], r["dataset"]): r for r in store.rollups()}
        assert rollups[("stats", "d1")]["count"] == 1
        assert rollups[("histogram", "d1")]["count"] == 1

    def test_waterfall_nests_children_and_offsets(self):
        record = TraceRecord(_make_spans("ab" * 4))
        tree = record.waterfall()
        (root,) = tree["spans"]
        assert root["start_ms"] == 0.0
        (child,) = root["children"]
        assert child["parent_id"] == root["span_id"]
        assert child["start_ms"] >= 0.0

    def test_chrome_export_is_well_formed(self):
        doc = TraceRecord(_make_spans("ab" * 4)).chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "M"}
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        assert [e["ts"] for e in xs] == sorted(e["ts"] for e in xs)
        json.dumps(doc)  # JSON-serialisable end to end


# ------------------------------------------------------------------- server


async def raw_http(port, method, target, headers=None):
    """One exchange returning (status, header dict, raw body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        writer.write(
            f"{method} {target} HTTP/1.1\r\nHost: t\r\n{extra}"
            "Content-Length: 0\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    hdrs = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        hdrs[key.strip().lower()] = value.strip()
    return status, hdrs, body


@pytest.fixture(scope="module")
def fig4_artifact():
    return build_artifact(paper_figure4_graph(), algorithm="bit-bu-csr")


def make_server(artifact, **kwargs):
    registry = ArtifactRegistry()
    registry.register("fig4", artifact)
    return BitrussServer(registry, port=0, **kwargs)


class TestDebugPlane:
    def test_traced_request_yields_full_waterfall(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                await raw_http(
                    server.port,
                    "GET",
                    "/fig4/stats",
                    headers={"X-Trace-Id": "feedface"},
                )
                status, _, body = await raw_http(
                    server.port, "GET", "/debug/traces/feedface"
                )
                assert status == 200
                tree = json.loads(body)
                assert tree["trace_id"] == "feedface"
                assert tree["endpoint"] == "stats"
                assert tree["dataset"] == "fig4"
                (root,) = tree["spans"]
                assert root["name"] == "GET /fig4/stats"

                def names(node):
                    yield node["name"]
                    for child in node.get("children", ()):
                        yield from names(child)

                seen = set(names(root))
                assert {"coalescer flush", "engine batch", "query:stats"} <= seen

        run(scenario())

    def test_traces_listing_and_filters(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                await raw_http(server.port, "GET", "/fig4/stats")
                await raw_http(server.port, "GET", "/fig4/histogram")
                _, _, body = await raw_http(server.port, "GET", "/debug/traces")
                payload = json.loads(body)
                assert {r["endpoint"] for r in payload["recent"]} == {
                    "stats",
                    "histogram",
                }
                assert payload["recorder"]["retained_traces"] == 2
                assert payload["store"]["traces_added"] == 2

                _, _, body = await raw_http(
                    server.port, "GET", "/debug/traces?endpoint=stats"
                )
                filtered = json.loads(body)
                assert all(
                    r["endpoint"] == "stats" for r in filtered["recent"]
                )
                assert len(filtered["recent"]) == 1

        run(scenario())

    def test_unknown_trace_is_404(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                status, _, body = await raw_http(
                    server.port, "GET", "/debug/traces/deadbeef"
                )
                assert status == 404
                assert json.loads(body)["error"]["type"] == "unknown_trace"

        run(scenario())

    def test_chrome_export_schema(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                await raw_http(
                    server.port,
                    "GET",
                    "/fig4/stats",
                    headers={"X-Trace-Id": "cafe0001"},
                )
                status, hdrs, body = await raw_http(
                    server.port, "GET", "/debug/traces/cafe0001?format=chrome"
                )
                assert status == 200
                assert hdrs["content-type"] == "application/json"
                doc = json.loads(body)
                events = doc["traceEvents"]
                assert events and {e["ph"] for e in events} <= {"X", "M"}
                xs = [e for e in events if e["ph"] == "X"]
                assert [e["ts"] for e in xs] == sorted(e["ts"] for e in xs)
                assert all(e["dur"] >= 0 for e in xs)
                assert any(e["name"] == "GET /fig4/stats" for e in xs)

        run(scenario())

    def test_debug_vars_snapshot(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                await raw_http(server.port, "GET", "/fig4/stats")
                status, _, body = await raw_http(
                    server.port, "GET", "/debug/vars"
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["process"]["rss_bytes"] > 0
                assert payload["registry_versions"] == {"fig4": 1}
                assert payload["tracing"]["recorder"]["capacity"] >= 1
                assert payload["tracing"]["store"]["traces_added"] == 1
                assert "coalescer" in payload and "server" in payload

        run(scenario())

    def test_debug_requests_excluded_from_latency_and_traces(
        self, fig4_artifact
    ):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                for _ in range(3):
                    await raw_http(server.port, "GET", "/debug/vars")
                    await raw_http(server.port, "GET", "/debug/traces")
                _, _, body = await raw_http(
                    server.port, "GET", "/metrics?format=prometheus"
                )
                text = body.decode()
                # Counted as requests, invisible to the latency histogram.
                assert re.search(
                    r'repro_http_requests_total\{endpoint="debug/vars"[^}]*\} 3',
                    text,
                )
                assert 'repro_http_request_seconds_bucket{endpoint="debug' not in text
                # And never retained as traces.
                _, _, body = await raw_http(server.port, "GET", "/debug/traces")
                assert json.loads(body)["store"]["traces_added"] == 0

        run(scenario())

    def test_openmetrics_exemplars_join_buckets_to_traces(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact) as server:
                await raw_http(
                    server.port,
                    "GET",
                    "/fig4/stats",
                    headers={"X-Trace-Id": "beef0042"},
                )
                status, hdrs, body = await raw_http(
                    server.port, "GET", "/metrics?format=openmetrics"
                )
                assert status == 200
                assert hdrs["content-type"].startswith(
                    "application/openmetrics-text"
                )
                text = body.decode()
                assert text.rstrip().endswith("# EOF")
                matches = re.findall(
                    r'repro_http_request_seconds_bucket\{[^}]*\} \d+ '
                    r'# \{trace_id="([0-9a-f]+)"\} [0-9.e+-]+ \d+(?:\.\d+)?',
                    text,
                )
                assert "beef0042" in matches

                # The classic exposition stays exemplar-free.
                _, _, body = await raw_http(
                    server.port, "GET", "/metrics?format=prometheus"
                )
                assert b"# {" not in body and b"# EOF" not in body

        run(scenario())

    def test_trace_sample_zero_server_records_nothing(self, fig4_artifact):
        async def scenario():
            async with make_server(fig4_artifact, trace_sample=0.0) as server:
                await raw_http(
                    server.port,
                    "GET",
                    "/fig4/stats",
                    headers={"X-Trace-Id": "feed0099"},
                )
                status, _, _ = await raw_http(
                    server.port, "GET", "/debug/traces/feed0099"
                )
                assert status == 404
                _, _, body = await raw_http(server.port, "GET", "/debug/traces")
                payload = json.loads(body)
                assert payload["recent"] == []
                assert payload["recorder"]["recorded"] == 0

        run(scenario())


# ------------------------------------------------------------ worker graft


class TestWorkerSpanGraft:
    @pytest.fixture(autouse=True)
    def _needs_shm(self):
        from repro.runtime import is_available

        if not is_available():
            pytest.skip("POSIX shared memory unavailable")

    def test_worker_spans_link_under_dispatch_span(self):
        from repro.runtime import ParallelRuntime

        rec = obs_spans.get_recorder()
        graph = paper_figure4_graph()
        with obs_trace.trace_context("ace0f5e7"):
            with obs_spans.trace_span("GET /test", endpoint="test"):
                with ParallelRuntime(graph, workers=2) as runtime:
                    runtime.count_per_edge()
        record = TraceRecord(rec.finish_trace("ace0f5e7"))
        tree = record.waterfall()
        (root,) = tree["spans"]  # single tree: every span found its parent
        assert root["name"] == "GET /test"
        dispatches = [
            c for c in root["children"] if c["name"].startswith("pool dispatch:")
        ]
        assert dispatches
        workers = dispatches[0].get("children", [])
        assert workers and all(
            w["name"].startswith("worker:") for w in workers
        )
        assert {w["pid"] for w in workers} != {root["pid"]}  # truly remote


# ----------------------------------------------------------------- overhead


class TestTracingOverhead:
    def test_active_span_overhead_under_three_percent_on_bit_bu_csr(
        self, monkeypatch
    ):
        """Always-on contract: recording costs < 3% of a traced decompose.

        Same deterministic methodology as the phases no-op bound: count
        every span() entry a traced bit-bu-csr run makes, measure the
        per-call cost of the *active* recording path directly, and
        compare their product against the run's wall time.
        """
        from repro.core.bit_bu_batch import bit_bu_csr

        graph = erdos_renyi_bipartite(300, 300, 2500, seed=7)
        bit_bu_csr(graph)  # warm caches (sorted CSR, priorities)

        calls = {"n": 0}
        real_span = obs_spans.span

        def counting_span(name, **attrs):
            calls["n"] += 1
            return real_span(name, **attrs)

        monkeypatch.setattr(obs_spans, "span", counting_span)
        with obs_trace.trace_context("0ve12head"):
            start = time.perf_counter()
            bit_bu_csr(graph)
            wall = time.perf_counter() - start
        monkeypatch.undo()
        obs_spans.get_recorder().take_trace("0ve12head")

        reps = 50_000
        with obs_trace.trace_context("ca11c057"):
            start = time.perf_counter()
            for _ in range(reps):
                with obs_spans.span("x"):
                    pass
            per_call = (time.perf_counter() - start) / reps
        obs_spans.get_recorder().take_trace("ca11c057")

        overhead = calls["n"] * per_call
        assert calls["n"] > 0
        assert overhead < 0.03 * wall, (
            f"{calls['n']} span() calls x {per_call * 1e9:.0f} ns "
            f"= {overhead * 1e3:.3f} ms vs {wall * 1e3:.1f} ms wall"
        )

"""End-to-end decomposition correctness for all five algorithms."""

import numpy as np
import pytest

from repro.core import (
    bit_bs,
    bit_bu,
    bit_bu_plus,
    bit_bu_plus_plus,
    bit_pc,
    reference_decomposition,
)
from repro.core.api import bitruss_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    affiliation_bipartite,
    chung_lu_bipartite,
    complete_biclique,
    erdos_renyi_bipartite,
    hub_edge_example,
    nested_communities,
    paper_figure1_graph,
    paper_figure4_graph,
    planted_bloom,
)
from tests.conftest import assert_phi_equal

ALL_ALGORITHMS = [bit_bs, bit_bu, bit_bu_plus, bit_bu_plus_plus, bit_pc]


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
class TestKnownAnswers:
    def test_figure1(self, algorithm):
        # paper Figure 1: blue edges 2, yellow 1, gray 0
        g = paper_figure1_graph()
        result = algorithm(g)
        expected = {
            (0, 0): 2, (0, 1): 2, (1, 0): 2, (1, 1): 2, (2, 0): 2, (2, 1): 2,
            (2, 2): 1, (3, 1): 1, (3, 2): 1,
            (2, 3): 0, (3, 4): 0,
        }
        assert result.as_dict() == expected

    def test_figure4(self, algorithm):
        g = paper_figure4_graph()
        result = algorithm(g)
        assert result.phi.tolist() == [2, 2, 2, 2, 2, 2, 1, 1, 1, 0, 0]

    def test_single_butterfly(self, algorithm):
        result = algorithm(complete_biclique(2, 2))
        assert result.phi.tolist() == [1, 1, 1, 1]

    def test_complete_biclique(self, algorithm):
        # K_{a,b} is its own (a-1)(b-1)-bitruss
        for a, b in [(2, 4), (3, 3), (3, 5)]:
            result = algorithm(complete_biclique(a, b))
            assert set(result.phi.tolist()) == {(a - 1) * (b - 1)}

    def test_planted_bloom(self, algorithm):
        # a k-bloom: every edge has bitruss number k-1
        result = algorithm(planted_bloom(6))
        assert set(result.phi.tolist()) == {5}

    def test_star_has_no_butterflies(self, algorithm):
        result = algorithm(complete_biclique(1, 5))
        assert set(result.phi.tolist()) == {0}

    def test_empty_graph(self, algorithm):
        result = algorithm(BipartiteGraph(3, 3))
        assert len(result.phi) == 0
        assert result.max_k == 0

    def test_edgeless_vertices(self, algorithm):
        result = algorithm(BipartiteGraph(2, 2, [(0, 0)]))
        assert result.phi.tolist() == [0]

    def test_hub_edge_example(self, algorithm):
        # Figure 2: the hub edge (u1, v1) lies in exactly one butterfly and
        # has bitruss number 1 along with the rest of that butterfly.
        g = hub_edge_example(fan=30)
        result = algorithm(g)
        assert result.phi_of(1, 1) == 1
        assert result.phi_of(0, 0) == 1
        assert result.phi_of(2, 40) == 0

    def test_two_disjoint_blooms(self, algorithm):
        # 4-bloom (phi 3) next to an unrelated 2-bloom (phi 1)
        edges = [(0, v) for v in range(4)] + [(1, v) for v in range(4)]
        edges += [(2, 4), (2, 5), (3, 4), (3, 5)]
        g = BipartiteGraph(4, 6, edges)
        result = algorithm(g)
        assert result.phi.tolist() == [3] * 8 + [1] * 4


@pytest.mark.parametrize("seed", range(8))
def test_all_algorithms_match_reference_random(seed):
    g = erdos_renyi_bipartite(9, 9, 40, seed=seed)
    expected = reference_decomposition(g)
    for fn in ALL_ALGORITHMS:
        assert_phi_equal(fn(g).phi, expected, f"{fn.__name__} seed={seed}")


@pytest.mark.parametrize(
    "maker",
    [
        lambda: chung_lu_bipartite(40, 40, 200, seed=21),
        lambda: affiliation_bipartite(
            40, 40, 12, community_upper=5, community_lower=5, p_in=0.7, seed=22
        ),
        lambda: nested_communities(
            [(12, 12, 0.4), (5, 5, 1.0)], noise_edges=30, seed=23
        ),
    ],
)
def test_cross_agreement_structured(maker):
    g = maker()
    results = {fn.__name__: fn(g).phi for fn in ALL_ALGORITHMS}
    baseline = results["bit_bs"]
    for name, phi in results.items():
        assert_phi_equal(phi, baseline, name)


class TestApi:
    def test_algorithm_aliases(self, figure4):
        expected = [2, 2, 2, 2, 2, 2, 1, 1, 1, 0, 0]
        for name in ("bs", "bu", "bu+", "bu++", "pc", "BIT-PC", "Bit-Bu"):
            result = bitruss_decomposition(figure4, algorithm=name)
            assert result.phi.tolist() == expected

    def test_unknown_algorithm(self, figure4):
        with pytest.raises(ValueError, match="unknown algorithm"):
            bitruss_decomposition(figure4, algorithm="nope")

    def test_stats_populated(self, figure4):
        from repro.utils.stats import UpdateCounter

        counter = UpdateCounter()
        result = bitruss_decomposition(figure4, algorithm="bu++", counter=counter)
        assert result.stats.algorithm == "BiT-BU++"
        assert "peeling" in result.stats.timings
        assert result.stats.updates == counter.total

    def test_default_is_bu_plus_plus(self, figure4):
        result = bitruss_decomposition(figure4)
        assert result.stats.algorithm == "BiT-BU++"


class TestMonotoneProperties:
    def test_phi_at_most_support(self, medium_random):
        from repro.butterfly.counting import count_per_edge

        support = count_per_edge(medium_random)
        phi = bit_bu_plus_plus(medium_random).phi
        assert np.all(phi <= support)

    def test_hierarchy_is_nested(self, medium_random):
        result = bit_bu_plus_plus(medium_random)
        hierarchy = result.hierarchy()
        counts = [hierarchy[k] for k in sorted(hierarchy)]
        assert counts == sorted(counts, reverse=True)

    def test_update_counts_ordering(self):
        # the batch optimizations may only reduce the update count, and
        # BiT-PC reduces it further on hub-heavy graphs (paper Fig. 10)
        from repro.utils.stats import UpdateCounter

        g = chung_lu_bipartite(150, 20, 700, exponent_upper=2.5,
                               exponent_lower=1.7, seed=33)
        counts = {}
        for name, fn in [("bu", bit_bu), ("bu++", bit_bu_plus_plus),
                         ("pc", bit_pc)]:
            counter = UpdateCounter()
            fn(g, counter=counter)
            counts[name] = counter.total
        assert counts["bu++"] <= counts["bu"]
        assert counts["pc"] < counts["bu"]

"""Butterfly counting: vertex-priority algorithm vs independent references."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.butterfly.counting import (
    count_butterflies_total,
    count_per_edge,
    count_per_edge_naive,
    max_support,
    support_histogram,
)
from repro.butterfly.enumeration import (
    count_butterflies_brute_force,
    supports_from_enumeration,
)
from repro.graph.generators import (
    complete_biclique,
    erdos_renyi_bipartite,
    planted_bloom,
)
from tests.conftest import bipartite_graphs


class TestKnownValues:
    def test_single_butterfly(self):
        g = complete_biclique(2, 2)
        assert count_butterflies_total(g) == 1
        assert count_per_edge(g).tolist() == [1, 1, 1, 1]

    def test_no_butterflies_in_star(self):
        g = complete_biclique(1, 6)
        assert count_butterflies_total(g) == 0
        assert count_per_edge(g).max() == 0

    def test_no_butterflies_in_path(self):
        from repro.graph.bipartite import BipartiteGraph

        g = BipartiteGraph(2, 2, [(0, 0), (1, 0), (1, 1)])
        assert count_butterflies_total(g) == 0

    def test_complete_biclique_formula(self):
        # K_{a,b}: C(a,2) * C(b,2) butterflies; each edge in (a-1)(b-1)
        for a, b in [(2, 3), (3, 3), (4, 5)]:
            g = complete_biclique(a, b)
            expected_total = (a * (a - 1) // 2) * (b * (b - 1) // 2)
            assert count_butterflies_total(g) == expected_total
            assert set(count_per_edge(g).tolist()) == {(a - 1) * (b - 1)}

    def test_figure4_supports(self, figure4):
        support = count_per_edge(figure4)
        # e0..e5 lie in B0* (3-bloom, 2 each); e5 also in B1* -> 3
        # e6..e8 lie only in B1* (1 each); pendants have 0
        assert support.tolist() == [2, 2, 2, 2, 2, 3, 1, 1, 1, 0, 0]


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_three_way_agreement_random(self, seed):
        g = erdos_renyi_bipartite(12, 12, 60, seed=seed)
        fast = count_per_edge(g)
        naive = count_per_edge_naive(g)
        enum = supports_from_enumeration(g)
        np.testing.assert_array_equal(fast, naive)
        np.testing.assert_array_equal(fast, enum)

    @pytest.mark.parametrize("seed", range(3))
    def test_total_matches_enumeration(self, seed):
        g = erdos_renyi_bipartite(10, 10, 45, seed=seed)
        assert count_butterflies_total(g) == count_butterflies_brute_force(g)

    def test_total_is_quarter_of_support_sum(self, medium_random):
        # each butterfly contributes to exactly 4 edge supports
        support = count_per_edge(medium_random)
        total = count_butterflies_total(medium_random)
        assert int(support.sum()) == 4 * total


@settings(max_examples=60, deadline=None)
@given(bipartite_graphs())
def test_counting_property(graph):
    fast = count_per_edge(graph)
    naive = count_per_edge_naive(graph)
    np.testing.assert_array_equal(fast, naive)
    total = count_butterflies_total(graph)
    assert int(fast.sum()) == 4 * total


class TestLemma8Bounds:
    def test_bounds_hold(self, medium_random):
        g = medium_random
        total = count_butterflies_total(g)
        m = g.num_edges
        assert total <= m * m  # Lemma 8 eq. (1)
        # eq. (2): per-edge bound sup(u,v) <= (d(u)-1)(d(v)-1)
        support = count_per_edge(g)
        for eid in range(m):
            u, v = g.edge_endpoints(eid)
            assert support[eid] <= (g.degree_upper(u) - 1) * (g.degree_lower(v) - 1)


class TestHelpers:
    def test_support_histogram(self):
        hist = support_histogram(np.array([0, 1, 1, 3]))
        assert hist == {0: 1, 1: 2, 3: 1}

    def test_max_support_empty(self):
        assert max_support(np.array([], dtype=np.int64)) == 0

    def test_priorities_can_be_supplied(self, figure4):
        from repro.utils.priority import vertex_priorities

        prio = vertex_priorities(figure4.degrees())
        np.testing.assert_array_equal(
            count_per_edge(figure4, priorities=prio), count_per_edge(figure4)
        )

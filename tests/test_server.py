"""repro.server: routing, parity, coalescing, hot-swap, error paths."""

import asyncio
import json

import numpy as np
import pytest

from repro.datasets import dataset_names, load_dataset
from repro.graph.generators import paper_figure4_graph
from repro.server import (
    ArtifactRegistry,
    BitrussServer,
    QueryCoalescer,
    UnknownDatasetError,
    UpdateManager,
    jsonify,
)
from repro.service import QueryEngine, build_artifact

ALGORITHM = "bit-bu-csr"


def run(coro):
    return asyncio.run(coro)


async def http(port, method, target, body=None):
    """One HTTP exchange against a local server; returns (status, json)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    header, _, body = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(body)


@pytest.fixture(scope="module")
def fig4_artifact():
    return build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)


def make_server(artifacts, *, mutable=(), incremental=True, **kwargs):
    """Registry + server over {name: artifact}; caller starts/stops it."""
    registry = ArtifactRegistry()
    for name, artifact in artifacts.items():
        registry.register(name, artifact, allow_stale=name in mutable)
    updates = None
    if mutable:
        updates = UpdateManager(
            registry,
            debounce=kwargs.pop("debounce", 0.05),
            incremental=incremental,
        )
        for name in mutable:
            updates.attach(name)
    return BitrussServer(registry, port=0, updates=updates, **kwargs)


# ------------------------------------------------------------------ routing


class TestRouting:
    def test_index_health_datasets(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                status, index = await http(server.port, "GET", "/")
                assert status == 200
                assert "/{ds}/community?k=&upper=|lower=" in index["endpoints"]

                status, health = await http(server.port, "GET", "/healthz")
                assert (status, health["status"]) == (200, "ok")
                assert health["datasets"] == 1

                status, listing = await http(server.port, "GET", "/datasets")
                assert status == 200
                (entry,) = listing
                assert entry["name"] == "fig4"
                assert entry["version"] == 1
                assert entry["mutable"] is False
                assert entry["num_edges"] == fig4_artifact.graph.num_edges

        run(scenario())

    def test_unknown_dataset_and_route_are_structured_404s(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                status, body = await http(server.port, "GET", "/nope/stats")
                assert status == 404
                assert body["error"]["type"] == "unknown_dataset"
                assert "fig4" in body["error"]["message"]

                status, body = await http(server.port, "GET", "/fig4/frobnicate")
                assert status == 404
                assert body["error"]["type"] == "unknown_route"

                status, body = await http(server.port, "GET", "/a/b/c")
                assert status == 404

        run(scenario())

    def test_method_not_allowed(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                status, body = await http(server.port, "POST", "/fig4/stats")
                assert status == 405
                assert body["error"]["type"] == "method_not_allowed"

                status, body = await http(server.port, "GET", "/fig4/batch")
                assert status == 405

        run(scenario())

    def test_keep_alive_serves_multiple_requests_per_connection(
        self, fig4_artifact
    ):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    for _ in range(3):
                        writer.write(
                            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                        )
                        await writer.drain()
                        header = await reader.readuntil(b"\r\n\r\n")
                        length = int(
                            [
                                line.split(b":")[1]
                                for line in header.split(b"\r\n")
                                if line.lower().startswith(b"content-length")
                            ][0]
                        )
                        body = await reader.readexactly(length)
                        assert json.loads(body)["status"] == "ok"
                finally:
                    writer.close()

        run(scenario())


# -------------------------------------------------------------- bad queries


class TestErrorPaths:
    @pytest.mark.parametrize(
        "target, kind",
        [
            ("/fig4/community?upper=0", "bad_parameter"),  # k missing
            ("/fig4/community?k=oops&upper=0", "bad_parameter"),
            ("/fig4/community?k=-1&upper=0", "bad_parameter"),
            ("/fig4/community?k=2", "bad_parameter"),  # no vertex
            ("/fig4/community?k=2&upper=0&lower=0", "bad_parameter"),
            ("/fig4/community?k=2&upper=99999", "bad_parameter"),
            ("/fig4/max_k?lower=99999", "bad_parameter"),
            ("/fig4/hierarchy_path", "bad_parameter"),  # no edge/eid
            ("/fig4/hierarchy_path?u=3", "bad_parameter"),  # v missing
            ("/fig4/hierarchy_path?eid=99999", "bad_parameter"),
            ("/fig4/hierarchy_path?u=0&v=99", "unknown_edge"),
        ],
    )
    def test_malformed_query_params(self, fig4_artifact, target, kind):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                status, body = await http(server.port, "GET", target)
                assert status in (400, 404)
                assert body["error"]["type"] == kind

        run(scenario())

    def test_batch_body_validation(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                cases = [
                    (None, "bad_json"),
                    ({"queries": []}, "bad_query"),
                    ([{"op": "warp"}], "unknown_op"),
                    ([{"op": "stats", "bogus": 1}], "bad_query"),
                    (["not-a-dict"], "bad_query"),
                ]
                for payload, kind in cases:
                    status, body = await http(
                        server.port, "POST", "/fig4/batch", payload
                    )
                    assert status == 400, (payload, body)
                    assert body["error"]["type"] == kind

        run(scenario())

    def test_unframeable_requests_get_an_error_response_not_a_hangup(
        self, fig4_artifact
    ):
        """Bad request lines and bad/huge Content-Length answer 400/413
        before the connection closes, instead of silently dropping it."""

        async def raw_exchange(port, payload):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(payload)
                await writer.drain()
                raw = await reader.read()
            finally:
                writer.close()
            header, _, body = raw.partition(b"\r\n\r\n")
            return int(header.split()[1]), json.loads(body)

        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                status, body = await raw_exchange(server.port, b"garbage\r\n\r\n")
                assert status == 400
                assert body["error"]["type"] == "bad_request_line"

                status, body = await raw_exchange(
                    server.port,
                    b"POST /fig4/batch HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: abc\r\n\r\n",
                )
                assert status == 400
                assert body["error"]["type"] == "bad_header"

                status, body = await raw_exchange(
                    server.port,
                    b"POST /fig4/batch HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 99999999999\r\n\r\n",
                )
                assert status == 413
                assert body["error"]["type"] == "payload_too_large"

                status, body = await raw_exchange(
                    server.port,
                    b"GET /fig4/stats?pad=" + b"x" * 70_000 + b" HTTP/1.1\r\n\r\n",
                )
                assert status == 400
                assert body["error"]["type"] == "line_too_long"

                status, body = await raw_exchange(
                    server.port,
                    b"GET /healthz HTTP/1.1\r\n"
                    + b"".join(
                        b"X-H%d: y\r\n" % i for i in range(200)
                    )
                    + b"\r\n",
                )
                assert status == 400
                assert body["error"]["type"] == "too_many_headers"

        run(scenario())

    def test_invalid_query_cannot_poison_a_shared_batch(self, fig4_artifact):
        """A 400 is decided before entering the window: concurrent good
        requests coalesced in the same window still answer 200."""

        async def scenario():
            async with make_server(
                {"fig4": fig4_artifact}, window=0.05
            ) as server:
                good = [
                    http(server.port, "GET", "/fig4/stats") for _ in range(4)
                ]
                bad = http(server.port, "GET", "/fig4/community?k=2&upper=9999")
                results = await asyncio.gather(bad, *good)
                assert results[0][0] == 400
                assert all(status == 200 for status, _ in results[1:])

        run(scenario())


# ------------------------------------------------------------------- parity


class TestParity:
    def test_http_matches_engine_on_every_bundled_dataset(self):
        """Acceptance bar: HTTP responses are value-identical to direct
        QueryEngine calls on all bundled datasets."""

        async def scenario():
            artifacts = {
                name: build_artifact(load_dataset(name), algorithm=ALGORITHM)
                for name in dataset_names()
            }
            engines = {
                name: QueryEngine(artifact)
                for name, artifact in artifacts.items()
            }
            async with make_server(artifacts) as server:
                for name, engine in engines.items():
                    k = max(2, artifacts[name].max_k // 2)
                    expectations = {
                        f"/{name}/stats": engine.stats(),
                        f"/{name}/histogram": engine.phi_histogram(),
                        f"/{name}/community?k={k}&upper=0": engine.community(
                            k, upper=0
                        ),
                        f"/{name}/max_k?lower=0": engine.max_k(lower=0),
                        f"/{name}/hierarchy_path?eid=0": engine.hierarchy_path(
                            eid=0
                        ),
                    }
                    for target, direct in expectations.items():
                        status, body = await http(server.port, "GET", target)
                        assert status == 200, (target, body)
                        assert body["result"] == jsonify(direct), target

        run(scenario())

    def test_batch_endpoint_matches_engine_batch(self, fig4_artifact):
        async def scenario():
            engine = QueryEngine(fig4_artifact)
            queries = [
                {"op": "k_bitruss", "k": 2},
                {"op": "community", "k": 2, "upper": 0},
                {"op": "max_k", "lower": 1},
                {"op": "hierarchy_path", "edge": [0, 0]},
                {"op": "phi_histogram"},
                {"op": "stats"},
                {"op": "phi_of", "u": 0, "v": 0},
            ]
            direct = [jsonify(r) for r in engine.batch(list(queries))]
            async with make_server({"fig4": fig4_artifact}) as server:
                status, body = await http(
                    server.port, "POST", "/fig4/batch", {"queries": queries}
                )
                assert status == 200
                assert body["results"] == direct
                # A bare JSON list works too.
                status, body = await http(
                    server.port, "POST", "/fig4/batch", queries
                )
                assert status == 200
                assert body["results"] == direct

        run(scenario())


# --------------------------------------------------------------- coalescing


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_computation(self):
        """N identical in-window requests cost ~1 engine miss, not N."""

        async def scenario():
            artifact = build_artifact(
                load_dataset("github"), algorithm=ALGORITHM
            )
            registry = ArtifactRegistry(cache_size=0)  # every call = a miss
            registry.register("github", artifact, cache_size=0)
            server = BitrussServer(registry, port=0, window=0.05)
            async with server:
                n = 24
                results = await asyncio.gather(
                    *[
                        http(server.port, "GET", "/github/community?k=4&upper=0")
                        for _ in range(n)
                    ]
                )
                bodies = {json.dumps(body, sort_keys=True) for _, body in results}
                assert all(status == 200 for status, _ in results)
                assert len(bodies) == 1  # byte-identical shared answer
                stats = server.coalescer.stats()
                assert stats["submitted"] == n
                assert stats["merged"] >= n - 2
                misses = registry.get("github").engine.cache_info()["misses"]
                assert misses <= 2, f"expected ~1 engine call, saw {misses}"

        run(scenario())

    def test_window_folds_distinct_queries_into_one_engine_batch(
        self, fig4_artifact
    ):
        async def scenario():
            async with make_server(
                {"fig4": fig4_artifact}, window=0.05
            ) as server:
                entry = server.registry.get("fig4")
                calls = []
                original = entry.engine.batch

                def counting_batch(queries):
                    calls.append(list(queries))
                    return original(queries)

                entry.engine.batch = counting_batch
                targets = [
                    "/fig4/stats",
                    "/fig4/histogram",
                    "/fig4/max_k?upper=0",
                    "/fig4/community?k=2&upper=0",
                ]
                results = await asyncio.gather(
                    *[http(server.port, "GET", t) for t in targets]
                )
                assert all(status == 200 for status, _ in results)
                assert len(calls) == 1, "window should fold into one batch"
                assert len(calls[0]) == len(targets)
                assert server.coalescer.stats()["flushes"] == 1

        run(scenario())

    def test_coalescer_failure_reaches_every_waiter(self):
        async def scenario():
            coalescer = QueryCoalescer(window=0.01)

            async def failing_runner(queries):
                raise RuntimeError("engine exploded")

            waiters = [
                coalescer.submit("ds", [{"op": "stats"}], failing_runner)
                for _ in range(3)
            ]
            results = await asyncio.gather(*waiters, return_exceptions=True)
            assert all(
                isinstance(r, RuntimeError) and "exploded" in str(r)
                for r in results
            )
            # The failed batch is fully retired: a later submit starts fresh.
            async def ok_runner(queries):
                return [42], 1

            shared = await coalescer.submit("ds", [{"op": "stats"}], ok_runner)
            assert shared.values == [42]

        run(scenario())

    def test_max_batch_flushes_early(self):
        async def scenario():
            coalescer = QueryCoalescer(window=60.0, max_batch=3)

            async def runner(queries):
                return [f"r{i}" for i in range(len(queries))], 7

            shared = await asyncio.gather(
                *[
                    coalescer.submit("ds", [{"op": "max_k", "upper": i}], runner)
                    for i in range(3)
                ]
            )
            # A 60 s window would have hung; max_batch=3 flushed at once.
            assert [s.values for s in shared] == [["r0"], ["r1"], ["r2"]]
            assert all(s.version == 7 for s in shared)

        run(scenario())


# ----------------------------------------------------------------- registry


class TestRegistry:
    def test_register_swap_versions_and_leases(self, fig4_artifact):
        registry = ArtifactRegistry()
        entry = registry.register("fig4", fig4_artifact)
        assert entry.version == 1 and entry.swaps == 0

        with registry.acquire("fig4") as lease:
            old_engine = lease.engine
            assert entry.active_on(1) == 1
            swapped = registry.swap("fig4", fig4_artifact)
            assert swapped is entry
            assert entry.version == 2 and entry.swaps == 1
            # The in-flight lease still points at the engine it pinned.
            assert lease.engine is old_engine
            assert entry.engine is not old_engine
        assert entry.active == 0

        with registry.acquire("fig4") as lease:
            assert lease.version == 2
            assert lease.engine is entry.engine

    def test_invalid_and_duplicate_names_rejected(self, fig4_artifact):
        registry = ArtifactRegistry()
        for bad in ("", "metrics", "healthz", "datasets", "a/b"):
            with pytest.raises(ValueError):
                registry.register(bad, fig4_artifact)
        registry.register("fig4", fig4_artifact)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("fig4", fig4_artifact)
        with pytest.raises(UnknownDatasetError):
            registry.get("missing")

    def test_metrics_surface_cache_info(self, fig4_artifact):
        registry = ArtifactRegistry()
        registry.register("fig4", fig4_artifact)
        engine = registry.get("fig4").engine
        engine.k_bitruss(2)
        engine.k_bitruss(2)
        metrics = registry.metrics()["fig4"]
        assert metrics["cache"] == engine.cache_info()
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
        assert metrics["version"] == 1


# ------------------------------------------------------- updates + hot swap


class TestUpdatesAndHotSwap:
    def test_edge_mutation_round_trip(self):
        """POST /edges → debounced rebuild → hot-swap, end to end.

        Pinned to the full-rebuild path (incremental=False): the debounced
        rebuild machinery stays the fallback for large regions and must
        keep working end to end.
        """

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            server = make_server(
                {"fig4": artifact},
                mutable={"fig4"},
                debounce=0.02,
                incremental=False,
            )
            async with server:
                port = server.port
                _, before = await http(port, "GET", "/fig4/stats")
                assert before["version"] == 1

                status, body = await http(
                    port,
                    "POST",
                    "/fig4/edges",
                    {"ops": [{"op": "insert", "u": 0, "v": 3}]},
                )
                assert status == 200
                assert body["applied"] == 1
                assert body["rebuild"] == "scheduled"

                # Until the rebuild lands the old phi keeps serving
                # (allow_stale) and the dataset advertises its staleness.
                _, listing = await http(port, "GET", "/datasets")
                assert listing[0]["stale"] is True

                await server.updates.wait_idle()
                status, after = await http(port, "GET", "/fig4/stats")
                assert status == 200
                assert after["version"] == 2
                assert (
                    after["result"]["num_edges"]
                    == before["result"]["num_edges"] + 1
                )
                # The swapped-in answer matches an offline rebuild exactly.
                dynamic = server.updates.dynamic("fig4")
                fresh = QueryEngine(
                    build_artifact(dynamic.snapshot(), algorithm=ALGORITHM)
                )
                assert after["result"]["max_k"] == fresh.stats()["max_k"]
                _, hist = await http(port, "GET", "/fig4/histogram")
                assert hist["result"] == jsonify(fresh.phi_histogram())
                _, listing = await http(port, "GET", "/datasets")
                assert listing[0]["stale"] is False

        run(scenario())

    def test_hot_swap_drops_no_inflight_requests(self):
        """Requests leased on the old engine finish correctly while the
        swap lands; later requests see the new version."""

        async def scenario():
            artifact = build_artifact(
                load_dataset("github"), algorithm=ALGORITHM
            )
            server = make_server(
                {"github": artifact}, mutable={"github"}, debounce=0.0
            )
            async with server:
                port = server.port
                entry = server.registry.get("github")

                # Make every engine call slow enough that the rebuild +
                # swap happens while reads are in flight.
                import time as _time

                original = entry.engine.batch

                def slow_batch(queries):
                    _time.sleep(0.05)
                    return original(queries)

                entry.engine.batch = slow_batch

                reads = [
                    asyncio.create_task(
                        http(port, "GET", "/github/max_k?upper=0")
                    )
                    for _ in range(8)
                ]
                await asyncio.sleep(0.01)  # reads are leased and computing
                status, _ = await http(
                    port,
                    "POST",
                    "/github/edges",
                    {"ops": [{"op": "insert", "u": 0, "v": 1}]},
                )
                assert status == 200
                results = await asyncio.gather(*reads)
                assert all(status == 200 for status, _ in results)
                answers = {body["result"] for _, body in results}
                assert len(answers) == 1  # identical answers, no torn reads

                await server.updates.wait_idle()
                assert entry.version == 2
                assert entry.active == 0  # every lease was returned
                status, after = await http(port, "GET", "/github/max_k?upper=0")
                assert status == 200 and after["version"] == 2

        run(scenario())

    def test_mutation_burst_debounces_into_few_rebuilds(self):
        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            server = make_server(
                {"fig4": artifact},
                mutable={"fig4"},
                debounce=0.05,
                incremental=False,
            )
            async with server:
                for v in (2, 3, 4):
                    status, _ = await http(
                        server.port,
                        "POST",
                        "/fig4/edges",
                        {"ops": [{"op": "insert", "u": 1, "v": v}]},
                    )
                    assert status == 200
                status, _ = await http(
                    server.port,
                    "POST",
                    "/fig4/edges",
                    {"ops": [{"op": "delete", "u": 1, "v": 4}]},
                )
                assert status == 200
                await server.updates.wait_idle()
                stats = server.updates.stats()["fig4"]
                assert stats["mutations"] == 4
                assert stats["rebuilds"] <= 2  # burst collapsed, not 4 rebuilds
                assert server.registry.get("fig4").version == 1 + stats["rebuilds"]

        run(scenario())

    def test_failed_rebuild_is_surfaced_and_next_mutation_retries(self):
        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            server = make_server(
                {"fig4": artifact},
                mutable={"fig4"},
                debounce=0.01,
                incremental=False,
            )
            async with server:
                updates = server.updates
                dynamic = updates.dynamic("fig4")
                original_rebuild = dynamic.rebuild

                def exploding_rebuild(*args, **kwargs):
                    raise RuntimeError("decomposition backend down")

                dynamic.rebuild = exploding_rebuild
                status, _ = await http(
                    server.port,
                    "POST",
                    "/fig4/edges",
                    {"ops": [{"op": "insert", "u": 0, "v": 3}]},
                )
                assert status == 200
                await updates.wait_idle()
                stats = updates.stats()["fig4"]
                assert stats["rebuild_errors"] == 1
                assert "decomposition backend down" in stats["last_error"]
                assert server.registry.get("fig4").version == 1
                # Reads keep flowing (allow_stale) and advertise staleness.
                status, _ = await http(server.port, "GET", "/fig4/stats")
                assert status == 200
                _, listing = await http(server.port, "GET", "/datasets")
                assert listing[0]["stale"] is True

                # The next mutation schedules a fresh attempt that succeeds.
                dynamic.rebuild = original_rebuild
                status, _ = await http(
                    server.port,
                    "POST",
                    "/fig4/edges",
                    {"ops": [{"op": "insert", "u": 1, "v": 3}]},
                )
                assert status == 200
                await updates.wait_idle()
                stats = updates.stats()["fig4"]
                assert stats["rebuilds"] == 1
                assert stats["last_error"] is None
                assert server.registry.get("fig4").version == 2

        run(scenario())

    def test_mutation_during_rebuild_keeps_staleness_advertised(self):
        """If edges land while a rebuild is in the executor, the freshly
        swapped engine is already behind and must not claim freshness."""

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            server = make_server(
                {"fig4": artifact},
                mutable={"fig4"},
                debounce=0.01,
                incremental=False,
            )
            async with server:
                updates = server.updates
                dynamic = updates.dynamic("fig4")
                original_rebuild = dynamic.rebuild

                def racing_rebuild(*args, **kwargs):
                    # Simulate a mutation arriving mid-build (this runs in
                    # the executor; bumping _gen is exactly what apply()
                    # does on the loop thread).
                    updates._gen["fig4"] += 1
                    dynamic.rebuild = original_rebuild
                    return original_rebuild(*args, **kwargs)

                dynamic.rebuild = racing_rebuild
                updates._gen["fig4"] += 1
                await updates._rebuild("fig4")
                entry = server.registry.get("fig4")
                assert entry.version == 2
                assert entry.engine.stale  # behind by one mutation: advertised

        run(scenario())

    def test_mutation_error_paths(self, fig4_artifact):
        async def scenario():
            # Immutable dataset: structured 409.
            async with make_server({"fig4": fig4_artifact}) as server:
                status, body = await http(
                    server.port,
                    "POST",
                    "/fig4/edges",
                    {"ops": [{"op": "insert", "u": 0, "v": 0}]},
                )
                assert status == 409
                assert body["error"]["type"] == "immutable_dataset"

            server = make_server(
                {"fig4": fig4_artifact}, mutable={"fig4"}, debounce=0.01
            )
            async with server:
                cases = [
                    ({"ops": "nope"}, "ops must be a list"),
                    ({"ops": [{"op": "insert", "u": 0}]}, "integer 'u' and 'v'"),
                    # Floats/bools would coerce to a *different* edge than
                    # the client named — strictly rejected, like reads.
                    (
                        {"ops": [{"op": "insert", "u": 1.9, "v": 0}]},
                        "integer 'u' and 'v'",
                    ),
                    (
                        {"ops": [{"op": "insert", "u": True, "v": 0}]},
                        "integer 'u' and 'v'",
                    ),
                    ({"ops": [{"op": "explode", "u": 0, "v": 0}]}, "unknown op"),
                    (
                        {"ops": [{"op": "delete", "u": 0, "v": 3}]},
                        "not present",
                    ),
                    (
                        {"ops": [{"op": "insert", "u": 0, "v": 0}]},
                        "already present",
                    ),
                    (
                        {"ops": [{"op": "insert", "u": 99, "v": 0}]},
                        "out of range",
                    ),
                ]
                for payload, fragment in cases:
                    status, body = await http(
                        server.port, "POST", "/fig4/edges", payload
                    )
                    assert status == 400, (payload, body)
                    assert body["error"]["type"] == "bad_mutation"
                    assert fragment in body["error"]["message"]
                if server.updates.pending("fig4"):
                    await server.updates.wait_idle()

        run(scenario())

    def test_empty_ops_list_schedules_no_rebuild(self, fig4_artifact):
        async def scenario():
            server = make_server(
                {"fig4": fig4_artifact}, mutable={"fig4"}, debounce=0.01
            )
            async with server:
                for payload in ([], {"ops": []}):
                    status, body = await http(
                        server.port, "POST", "/fig4/edges", payload
                    )
                    assert status == 200
                    assert body["applied"] == 0
                    assert body["rebuild"] == "not_needed"
                assert not server.updates.pending("fig4")
                assert server.registry.get("fig4").version == 1

        run(scenario())

    def test_update_manager_requires_attached_dataset(self, fig4_artifact):
        async def scenario():
            registry = ArtifactRegistry()
            registry.register("fig4", fig4_artifact)
            updates = UpdateManager(registry)
            from repro.server.updates import MutationError

            with pytest.raises(MutationError, match="not mutable"):
                updates.apply("fig4", [{"op": "insert", "u": 0, "v": 0}])
            updates.attach("fig4")
            with pytest.raises(ValueError, match="already mutable"):
                updates.attach("fig4")

        run(scenario())


# --------------------------------------------------- incremental maintenance


async def raw_exchange(port, payload: bytes):
    """Send raw bytes (optionally truncated) and return the raw response."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        writer.write_eof()
        await writer.drain()
        return await reader.read()
    finally:
        writer.close()


class TestRequestParsing:
    """The keep-alive parser must reject truncated and smuggled framings."""

    def test_truncated_mid_headers_is_400(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                raw = await raw_exchange(
                    server.port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                )
                head, _, body = raw.partition(b"\r\n\r\n")
                assert b"400" in head.split(b"\r\n")[0]
                assert json.loads(body)["error"]["type"] == "truncated_request"

        run(scenario())

    def test_colonless_header_line_is_400(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                for bad in (b"Host t\r\n", b": empty-name\r\n"):
                    raw = await raw_exchange(
                        server.port,
                        b"GET /healthz HTTP/1.1\r\n" + bad + b"\r\n",
                    )
                    head, _, body = raw.partition(b"\r\n\r\n")
                    assert b"400" in head.split(b"\r\n")[0]
                    assert json.loads(body)["error"]["type"] == "bad_header"

        run(scenario())

    def test_duplicate_content_length_is_400(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                raw = await raw_exchange(
                    server.port,
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 0\r\nContent-Length: 5\r\n\r\n",
                )
                head, _, body = raw.partition(b"\r\n\r\n")
                assert b"400" in head.split(b"\r\n")[0]
                payload = json.loads(body)
                assert payload["error"]["type"] == "bad_header"
                assert "Content-Length" in payload["error"]["message"]

        run(scenario())

    def test_other_duplicate_headers_still_tolerated(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                raw = await raw_exchange(
                    server.port,
                    b"GET /healthz HTTP/1.1\r\nHost: a\r\nHost: b\r\n"
                    b"Connection: close\r\n\r\n",
                )
                assert b"200" in raw.split(b"\r\n")[0]

        run(scenario())


class TestIncrementalServing:
    def test_small_batch_patches_without_rebuild(self):
        """POST /edges small batch → localized φ repair → immediate swap,
        zero rebuilds, parity with an offline recompute."""

        async def scenario():
            from repro.butterfly.counting import count_per_edge

            graph = load_dataset("github")
            artifact = build_artifact(graph, algorithm=ALGORITHM)
            support = count_per_edge(graph)
            eid = int(np.flatnonzero(support == 0)[0])
            u, v = graph.edge_endpoints(eid)
            server = make_server({"github": artifact}, mutable={"github"})
            async with server:
                port = server.port
                status, body = await http(
                    port,
                    "POST",
                    "/github/edges",
                    {"ops": [{"op": "delete", "u": u, "v": v}]},
                )
                assert status == 200
                assert body["rebuild"] == "incremental"
                assert body["applied"] == 1
                # Published synchronously: new version, fresh, no task.
                assert not server.updates.pending("github")
                _, listing = await http(port, "GET", "/datasets")
                assert listing[0]["version"] == 2
                assert listing[0]["stale"] is False
                assert listing[0]["num_edges"] == graph.num_edges - 1

                status, body = await http(
                    port,
                    "POST",
                    "/github/edges",
                    {"ops": [{"op": "insert", "u": u, "v": v}]},
                )
                assert status == 200
                assert body["rebuild"] == "incremental"

                _, hist = await http(port, "GET", "/github/histogram")
                fresh = QueryEngine(
                    build_artifact(
                        server.updates.dynamic("github").snapshot(),
                        algorithm=ALGORITHM,
                    )
                )
                assert hist["result"] == jsonify(fresh.phi_histogram())

                _, metrics = await http(port, "GET", "/metrics")
                up = metrics["updates"]["github"]
                assert up["incremental_patches"] == 2
                assert up["rebuilds"] == 0
                assert up["incremental_fallbacks"] == 0
                assert up["tracker_dirty"] is False

        run(scenario())

    def test_threshold_fallback_schedules_rebuild_and_reseeds(self):
        """rebuild_threshold=0 forces the fallback path; the rebuild lands
        and reseeds the tracker so later batches patch incrementally."""

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            registry = ArtifactRegistry()
            registry.register("fig4", artifact, allow_stale=True)
            updates = UpdateManager(
                registry, debounce=0.01, rebuild_threshold=0.0
            )
            updates.attach("fig4")
            outcome = updates.apply(
                "fig4", [{"op": "insert", "u": 0, "v": 3}]
            )
            assert outcome["rebuild"] == "scheduled"
            dynamic = updates.dynamic("fig4")
            assert dynamic.tracker.dirty
            await updates.wait_idle()
            stats = updates.stats()["fig4"]
            assert stats["rebuilds"] == 1
            assert stats["tracker_dirty"] is False  # reseeded by the rebuild
            assert registry.get("fig4").version == 2
            # With the budget restored, the next small op patches in place.
            updates.rebuild_threshold = 1.0
            outcome = updates.apply(
                "fig4", [{"op": "delete", "u": 0, "v": 3}]
            )
            assert outcome["rebuild"] == "incremental"
            assert registry.get("fig4").version == 3
            assert updates.stats()["fig4"]["incremental_patches"] == 1

        run(scenario())

    def test_oversized_batch_goes_to_rebuild(self):
        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            registry = ArtifactRegistry()
            registry.register("fig4", artifact, allow_stale=True)
            updates = UpdateManager(
                registry, debounce=0.01, max_incremental_batch=1
            )
            updates.attach("fig4")
            graph = artifact.graph
            present = next(
                (u, v)
                for u in range(graph.num_upper)
                for v in range(graph.num_lower)
                if graph.has_edge(u, v)
            )
            # Two *net* ops (insert + unrelated delete) overflow the
            # max_incremental_batch=1 cap — an insert-then-delete of the
            # same edge would canonicalize away instead.
            outcome = updates.apply(
                "fig4",
                [
                    {"op": "insert", "u": 0, "v": 3},
                    {"op": "delete", "u": present[0], "v": present[1]},
                ],
            )
            assert outcome["rebuild"] == "scheduled"
            assert updates.dynamic("fig4").tracker.dirty
            await updates.wait_idle()
            assert updates.stats()["fig4"]["tracker_dirty"] is False

        run(scenario())

    def test_batch_net_noop_needs_no_rebuild(self):
        """An insert-then-delete of the same edge cancels out: the final
        graph (hence φ) is untouched, so the batch publishes nothing and
        the tracker stays clean — even past the batch-size cap."""

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            registry = ArtifactRegistry()
            registry.register("fig4", artifact, allow_stale=True)
            updates = UpdateManager(
                registry, debounce=0.01, max_incremental_batch=1
            )
            updates.attach("fig4")
            before = registry.get("fig4").version
            outcome = updates.apply(
                "fig4",
                [
                    {"op": "insert", "u": 0, "v": 3},
                    {"op": "delete", "u": 0, "v": 3},
                ],
            )
            assert outcome["rebuild"] == "not_needed"
            assert outcome["applied"] == 2
            assert outcome["butterfly_delta"] == 0
            assert not updates.dynamic("fig4").tracker.dirty
            assert not updates.pending("fig4")
            assert registry.get("fig4").version == before

        run(scenario())

    def test_rejected_oversized_batch_keeps_tracker_clean(self):
        """A too-large batch whose first op is invalid applies nothing —
        the tracker must stay clean so the next small batch still patches
        incrementally (regression: mark_dirty ran before validation)."""

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            registry = ArtifactRegistry()
            registry.register("fig4", artifact, allow_stale=True)
            updates = UpdateManager(
                registry, debounce=0.01, max_incremental_batch=1
            )
            updates.attach("fig4")
            from repro.server.updates import MutationError

            with pytest.raises(MutationError):
                updates.apply(
                    "fig4",
                    [
                        {"op": "insert", "u": 999, "v": 0},
                        {"op": "insert", "u": 0, "v": 3},
                    ],
                )
            assert not updates.dynamic("fig4").tracker.dirty
            assert not updates.pending("fig4")

        run(scenario())

    def test_partial_batch_error_applies_nothing(self):
        """A bad op anywhere in the batch rejects the whole batch before
        anything mutates: ``applied == 0``, the mirror and the served
        graph stay bitwise where they were, and no rebuild is scheduled
        (regression: the valid prefix used to land half-applied)."""

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            server = make_server({"fig4": artifact}, mutable={"fig4"})
            async with server:
                graph = artifact.graph
                absent = next(
                    (u, v)
                    for u in range(graph.num_upper)
                    for v in range(graph.num_lower)
                    if not graph.has_edge(u, v)
                )
                edges_before = server.updates.dynamic("fig4").num_edges
                status, body = await http(
                    server.port,
                    "POST",
                    "/fig4/edges",
                    {
                        "ops": [
                            {"op": "insert", "u": absent[0], "v": absent[1]},
                            {"op": "insert", "u": 999, "v": 0},
                        ]
                    },
                )
                assert status == 400
                assert body["error"]["applied"] == 0
                assert "op #1" in body["error"]["message"]
                assert server.updates.dynamic("fig4").num_edges == edges_before
                assert not server.updates.pending("fig4")
                assert not server.updates.dynamic("fig4").tracker.dirty
                entry = server.registry.get("fig4")
                assert entry.version == 1
                assert entry.engine.graph.num_edges == edges_before

        run(scenario())

    def test_predicted_fallback_burst_costs_one_rebuild(self):
        """N batches the predictor routes straight to fallback must
        coalesce into exactly ONE debounced rebuild, not one per batch
        (the ISSUE's burst contract)."""

        async def scenario():
            artifact = build_artifact(paper_figure4_graph(), algorithm=ALGORITHM)
            registry = ArtifactRegistry()
            registry.register("fig4", artifact, allow_stale=True)
            # A sub-1/m threshold makes the adaptive cap 0, so every op is
            # a *predicted* fallback (estimate >= 1) — no region search,
            # no abort, straight to the debounced rebuild.
            updates = UpdateManager(
                registry, debounce=0.05, rebuild_threshold=1e-9
            )
            updates.attach("fig4")
            graph = artifact.graph
            present = [
                (u, v)
                for u in range(graph.num_upper)
                for v in range(graph.num_lower)
                if graph.has_edge(u, v)
            ][:5]
            for u, v in present:
                outcome = updates.apply(
                    "fig4", [{"op": "delete", "u": u, "v": v}]
                )
                assert outcome["rebuild"] == "scheduled"
            stats = updates.stats()["fig4"]
            assert stats["predicted_fallbacks"] >= 1
            assert stats["incremental_fallbacks"] == 1  # later batches saw dirty
            await updates.wait_idle()
            stats = updates.stats()["fig4"]
            assert stats["rebuilds"] == 1
            assert stats["tracker_dirty"] is False
            entry = registry.get("fig4")
            assert entry.version == 2  # the single rebuild's swap
            assert entry.engine.graph.num_edges == updates.dynamic("fig4").num_edges

        run(scenario())


# ------------------------------------------------------------------ metrics


class TestMetrics:
    def test_metrics_endpoint_counts_and_cache(self, fig4_artifact):
        async def scenario():
            async with make_server({"fig4": fig4_artifact}) as server:
                for _ in range(2):
                    status, _ = await http(server.port, "GET", "/fig4/histogram")
                    assert status == 200
                await http(server.port, "GET", "/nope/stats")

                status, metrics = await http(server.port, "GET", "/metrics")
                assert status == 200
                assert metrics["server"]["requests_total"] >= 4
                assert metrics["server"]["errors_total"] >= 1
                ds = metrics["datasets"]["fig4"]
                assert ds["version"] == 1
                assert ds["cache"]["maxsize"] > 0
                # Sequential identical queries: first misses, second hits
                # the engine LRU (the coalescer only merges concurrent ones).
                assert ds["cache"]["misses"] >= 1
                assert ds["cache"]["hits"] >= 1
                assert metrics["coalescer"]["submitted"] >= 2

        run(scenario())

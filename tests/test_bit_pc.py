"""BiT-PC specifics: k_max bound, τ schedule, prefilter modes."""

import numpy as np
import pytest

from repro.butterfly.counting import count_per_edge
from repro.core import bit_bu_plus_plus, bit_pc, largest_possible_bitruss
from repro.graph.generators import (
    chung_lu_bipartite,
    complete_biclique,
    erdos_renyi_bipartite,
    planted_bloom,
)
from tests.conftest import assert_phi_equal


class TestKmax:
    def test_h_index_basic(self):
        assert largest_possible_bitruss(np.array([5, 4, 3, 2, 1])) == 3
        assert largest_possible_bitruss(np.array([0, 0, 0])) == 0
        assert largest_possible_bitruss(np.array([], dtype=np.int64)) == 0
        assert largest_possible_bitruss(np.array([10])) == 1
        assert largest_possible_bitruss(np.array([2, 2, 2, 2])) == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_kmax_bounds_phimax(self, seed):
        g = erdos_renyi_bipartite(12, 12, 70, seed=seed)
        support = count_per_edge(g)
        k_max = largest_possible_bitruss(support)
        phi = bit_bu_plus_plus(g).phi
        assert k_max >= int(phi.max())

    def test_kmax_tight_on_bloom(self):
        # a k-bloom: all 2k edges have support k-1; h-index = k-1 = phi_max
        g = planted_bloom(8)
        support = count_per_edge(g)
        assert largest_possible_bitruss(support) == 7


class TestTauSchedule:
    @pytest.mark.parametrize("tau", [0.02, 0.05, 0.1, 0.2, 0.5, 1.0])
    def test_all_tau_agree(self, tau, medium_random):
        expected = bit_bu_plus_plus(medium_random).phi
        result = bit_pc(medium_random, tau=tau)
        assert_phi_equal(result.phi, expected, f"tau={tau}")

    def test_invalid_tau(self, figure4):
        with pytest.raises(ValueError):
            bit_pc(figure4, tau=0.0)
        with pytest.raises(ValueError):
            bit_pc(figure4, tau=1.5)

    def test_iteration_count_matches_schedule(self, medium_random):
        result = bit_pc(medium_random, tau=0.2)
        k_max = result.stats.parameters["k_max"]
        alpha = result.stats.parameters["alpha"]
        assert alpha == max(1, -(-k_max // 5))  # ceil(k_max * 0.2)
        expected_iters = -(-k_max // alpha) + 1 if k_max else 1
        # +1 because the schedule ends with the epsilon = 0 sweep
        assert result.stats.iterations <= expected_iters + 1

    def test_tau_one_is_two_iterations(self, medium_random):
        result = bit_pc(medium_random, tau=1.0)
        assert result.stats.iterations <= 2

    def test_butterfly_free_graph_single_iteration(self):
        g = complete_biclique(1, 4)  # star: no butterflies, k_max = 0
        result = bit_pc(g)
        assert result.stats.iterations == 1
        assert set(result.phi.tolist()) == {0}


class TestPrefilter:
    def test_modes_agree(self, medium_random):
        a = bit_pc(medium_random, prefilter="fixpoint").phi
        b = bit_pc(medium_random, prefilter="single-pass").phi
        assert_phi_equal(a, b, "prefilter modes")

    def test_invalid_mode(self, figure4):
        with pytest.raises(ValueError, match="prefilter"):
            bit_pc(figure4, prefilter="twice")

    def test_fixpoint_never_more_updates(self):
        from repro.utils.stats import UpdateCounter

        g = chung_lu_bipartite(150, 20, 700, exponent_upper=2.5,
                               exponent_lower=1.7, seed=8)
        c_fix = UpdateCounter()
        bit_pc(g, prefilter="fixpoint", counter=c_fix)
        c_one = UpdateCounter()
        bit_pc(g, prefilter="single-pass", counter=c_one)
        assert c_fix.total <= c_one.total


class TestCompression:
    def test_assigned_edges_never_updated(self):
        """The defining property: once assigned, an edge's support is frozen.

        We detect this through the update counter bucketed by original
        support: with tau=1.0 the first iteration assigns the top levels,
        and the epsilon=0 sweep must not touch them again.
        """
        from repro.utils.stats import UpdateCounter

        g = chung_lu_bipartite(100, 15, 500, exponent_upper=2.4,
                               exponent_lower=1.8, seed=17)
        support = count_per_edge(g)
        counter = UpdateCounter(
            original_supports=support, bucket_bounds=[int(support.max()) // 2]
        )
        result = bit_pc(g, tau=0.05, counter=counter)
        # sanity on the bucketing machinery itself
        assert counter.total == sum(counter.bucket_totals())
        assert result.stats.update_buckets

    def test_index_peak_smaller_than_bu(self, medium_random):
        r_bu = bit_bu_plus_plus(medium_random)
        r_pc = bit_pc(medium_random, tau=0.05)
        assert r_pc.stats.index_peak_bytes <= r_bu.stats.index_peak_bytes

"""The performance-trajectory plane: schema, publish sinks, detector, CLI.

Covers the regression detector against synthetic trajectories (empty
history, single sample, noisy-but-flat, true regression, true improvement,
unit/metric renames across schema versions) and pins the acceptance
criterion end-to-end: a fake bench published through the real `bench run`
path passes `bench diff` on an unchanged re-run and fails it after an
injected 30% latency regression.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import bench as ob
from repro.obs.bench import (
    BenchResult,
    Contract,
    EnvFingerprint,
    Metric,
    compare_metric,
    default_tolerance,
    diff_results,
    discover,
    format_delta_table,
    load_result,
    make_baselines,
    merge_results,
    migrate,
    publish,
    read_trajectory,
    relative_noise,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env(host="boxa", cpu="cpu-x", count=8, sha="deadbeef"):
    return EnvFingerprint(
        git_sha=sha, python="3.11.7", numpy="1.26.0", platform="linux",
        hostname=host, cpu_count=count, cpu_model=cpu,
        repro_knobs={"REPRO_PROFILE": "0"}, peak_rss_bytes=1 << 20,
    )


def _result(bench, value, *, name="latency_seconds", unit="seconds",
            direction="lower", env=None, created=0.0):
    return BenchResult(
        bench=bench,
        metrics=[Metric(name, value, unit, direction)],
        env=env or _env(),
        created_unix=created,
    )


def _baselines(*results):
    return make_baselines(results)


# ----------------------------------------------------------------- schema


class TestSchema:
    def test_metric_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            Metric("x", 1.0, "seconds", "sideways")

    def test_roundtrip_preserves_everything(self):
        result = BenchResult(
            bench="demo",
            metrics=[Metric("t", 1.5, "seconds", "lower")],
            contracts=[Contract("bar", True, 2.0, 3.0)],
            env=_env(),
            payload={"rows": [1, 2, 3]},
            created_unix=123.0,
            repeats=3,
        )
        loaded = BenchResult.from_dict(result.to_dict())
        assert loaded.bench == "demo"
        assert loaded.metric("t").value == 1.5
        assert loaded.contracts[0].passed is True
        assert loaded.env.hostname == "boxa"
        assert loaded.payload == {"rows": [1, 2, 3]}
        assert loaded.repeats == 3

    def test_trajectory_form_omits_payload(self):
        result = _result("demo", 1.0)
        result.payload["big"] = "x" * 100
        doc = result.to_dict(trajectory=True)
        assert "payload" not in doc
        assert "env" in doc and "metrics" in doc

    def test_legacy_v0_payload_wraps_losslessly(self):
        legacy = {"bench": "query_engine", "records": [{"speedup": 12.0}]}
        loaded = BenchResult.from_dict(legacy)
        assert loaded.bench == "query_engine"
        assert loaded.metrics == []
        assert loaded.payload == legacy
        assert loaded.schema_version == ob.SCHEMA_VERSION

    def test_newer_schema_version_rejected(self):
        with pytest.raises(ValueError, match="newer schema"):
            migrate({"schema_version": ob.SCHEMA_VERSION + 1, "bench": "x"})

    def test_unit_rename_ms_to_seconds_on_load(self):
        doc = _result("demo", 1.0).to_dict()
        doc["metrics"] = [
            {"name": "latency_ms", "value": 250.0, "unit": "ms",
             "direction": "lower"}
        ]
        loaded = BenchResult.from_dict(doc)
        metric = loaded.metric("latency_seconds")
        assert metric is not None
        assert metric.value == pytest.approx(0.25)
        assert metric.unit == "seconds"

    def test_merge_results_is_direction_aware(self):
        def run(lo, hi, fx):
            return BenchResult(
                bench="demo",
                metrics=[
                    Metric("t", lo, "seconds", "lower"),
                    Metric("rps", hi, "rps", "higher"),
                    Metric("updates", fx, "count", "fixed"),
                ],
                env=_env(),
            )

        merged = merge_results([run(2.0, 10.0, 7.0), run(1.0, 30.0, 7.0),
                                run(3.0, 20.0, 7.0)])
        assert merged.metric("t").value == 1.0
        assert merged.metric("rps").value == 30.0
        assert merged.metric("updates").value == 7.0
        assert merged.repeats == 3

    def test_default_tolerances(self):
        assert default_tolerance(
            Metric("n", 0, "count", "fixed")
        ) == ob.FIXED_TOLERANCE
        assert default_tolerance(
            Metric("t", 0, "seconds", "lower")
        ) == ob._UNIT_TOLERANCES["seconds"]
        assert default_tolerance(Metric("r", 0, "ratio", "higher")) is None


# ---------------------------------------------------------------- publish


class TestPublish:
    def test_three_sinks(self, tmp_path):
        results_dir = tmp_path / "results"
        root = tmp_path / "root"
        result = _result("demo", 1.25)
        canonical = publish(result, results_dir, root_dir=root)
        assert canonical == results_dir / "BENCH_demo.json"
        assert (root / "BENCH_demo.json").exists()
        trajectory = results_dir / "trajectory.jsonl"
        assert trajectory.exists()
        assert load_result(canonical).metric("latency_seconds").value == 1.25
        entries = read_trajectory(trajectory)
        assert len(entries) == 1 and entries[0].bench == "demo"

    def test_trajectory_appends_and_skips_bad_lines(self, tmp_path):
        results_dir = tmp_path / "results"
        publish(_result("demo", 1.0), results_dir)
        publish(_result("demo", 2.0), results_dir)
        trajectory = results_dir / "trajectory.jsonl"
        with open(trajectory, "a") as handle:
            handle.write("not json\n")
        publish(_result("other", 3.0), results_dir)
        entries = read_trajectory(trajectory)
        assert [e.bench for e in entries] == ["demo", "demo", "other"]


# --------------------------------------------------------------- detector


class TestDetector:
    def test_empty_history_falls_back_to_threshold(self):
        assert relative_noise([]) == 0.0
        base = _baselines(_result("b", 1.0, name="r", unit="ratio"))
        entry = base["benches"]["b"]["metrics"]["r"]
        delta = compare_metric(
            "b", entry, Metric("r", 1.2, "ratio", "lower"), [], name="r"
        )
        # 20% < default 25% threshold
        assert delta.status == "ok"
        delta = compare_metric(
            "b", entry, Metric("r", 1.3, "ratio", "lower"), [], name="r"
        )
        assert delta.status == "regression"

    def test_single_sample_history_gives_no_noise(self):
        assert relative_noise([1.0]) == 0.0
        assert relative_noise([1.0, 1.1]) == 0.0  # below MIN_NOISE_SAMPLES

    def test_noisy_but_flat_series_widens_the_window(self):
        # ±40% swings around 1.0: any single new sample inside that band
        # must NOT flag, even though 40% > the 25% static threshold.
        history = [1.0, 1.4, 0.6, 1.3, 0.7, 1.2, 0.8]
        noise = relative_noise(history)
        assert noise > 0.25
        base = _baselines(_result("b", 1.0, name="r", unit="ratio"))
        entry = base["benches"]["b"]["metrics"]["r"]
        delta = compare_metric(
            "b", entry, Metric("r", 1.45, "ratio", "lower"), history, name="r"
        )
        assert delta.status == "ok"
        assert delta.allowed_rel >= ob.DEFAULT_NOISE_MULT * noise

    def test_true_regression_flags_and_improvement_does_not(self):
        base = _baselines(_result("b", 1.0, name="r", unit="ratio"))
        trajectory = [
            _result("b", v, name="r", unit="ratio", created=float(i))
            for i, v in enumerate([1.0, 1.01, 0.99, 1.02, 2.0])
        ]
        deltas = diff_results(trajectory, base)
        assert [d.status for d in deltas] == ["regression"]
        # an improvement in the good direction is reported, never gated
        trajectory[-1] = _result("b", 0.5, name="r", unit="ratio", created=4.0)
        deltas = diff_results(trajectory, base)
        assert [d.status for d in deltas] == ["improvement"]
        assert not any(d.gating for d in deltas)

    def test_higher_is_better_direction(self):
        base = _baselines(
            _result("b", 100.0, name="rps", unit="rps", direction="higher")
        )
        drop = [_result("b", 60.0, name="rps", unit="rps",
                        direction="higher")]
        assert diff_results(drop, base)[0].status == "regression"
        rise = [_result("b", 160.0, name="rps", unit="rps",
                        direction="higher")]
        assert diff_results(rise, base)[0].status == "improvement"

    def test_fixed_metric_flags_any_drift_both_ways(self):
        base = _baselines(
            _result("b", 1000.0, name="updates", unit="count",
                    direction="fixed")
        )
        for bad in (996.0, 1004.0):
            got = diff_results(
                [_result("b", bad, name="updates", unit="count",
                         direction="fixed")],
                base,
            )
            assert got[0].status == "regression", bad
        ok = diff_results(
            [_result("b", 1000.0, name="updates", unit="count",
                     direction="fixed")],
            base,
        )
        assert ok[0].status == "ok"

    def test_cross_machine_timing_demoted_to_info_fixed_still_gates(self):
        pinned = BenchResult(
            bench="b",
            metrics=[
                Metric("t", 1.0, "seconds", "lower"),
                Metric("updates", 100.0, "count", "fixed"),
            ],
            env=_env(host="ci-runner-1"),
        )
        base = _baselines(pinned)
        latest = BenchResult(
            bench="b",
            metrics=[
                Metric("t", 10.0, "seconds", "lower"),  # 10x "slower"
                Metric("updates", 150.0, "count", "fixed"),
            ],
            env=_env(host="laptop"),
        )
        by_name = {d.metric: d for d in diff_results([latest], base)}
        assert by_name["t"].status == "info"  # different box: not gated
        assert by_name["updates"].status == "regression"  # gates anywhere
        strict = {
            d.metric: d
            for d in diff_results([latest], base, strict_env=True)
        }
        assert strict["t"].status == "regression"

    def test_noise_history_only_from_matching_machines(self):
        base = _baselines(_result("b", 1.0, name="r", unit="ratio"))
        # wildly noisy history from ANOTHER machine must not widen the
        # window for this machine's candidate
        other = [
            _result("b", v, name="r", unit="ratio",
                    env=_env(host="elsewhere"), created=float(i))
            for i, v in enumerate([0.1, 5.0, 0.2, 4.0])
        ]
        latest = _result("b", 1.3, name="r", unit="ratio", created=10.0)
        delta = diff_results(other + [latest], base)[0]
        assert delta.samples == 0
        assert delta.status == "regression"

    def test_metric_rename_across_versions_still_compares(self):
        # baseline pinned under the new name; an old trajectory line wrote
        # latency_ms in ms — normalization maps it onto the same series
        base = _baselines(_result("b", 1.0, name="latency_seconds"))
        old_line = _result("b", 1.0).to_dict()
        old_line["metrics"] = [
            {"name": "latency_ms", "value": 1400.0, "unit": "ms",
             "direction": "lower"}
        ]
        latest = BenchResult.from_dict(old_line)
        delta = diff_results([latest], base)[0]
        assert delta.metric == "latency_seconds"
        assert delta.latest == pytest.approx(1.4)

    def test_unpinned_metric_reports_new(self):
        base = _baselines(_result("b", 1.0, name="old"))
        latest = BenchResult(
            bench="b",
            metrics=[Metric("old", 1.0, "seconds", "lower"),
                     Metric("fresh", 2.0, "seconds", "lower")],
            env=_env(),
        )
        statuses = {d.metric: d.status for d in diff_results([latest], base)}
        assert statuses["fresh"] == "new"

    def test_missing_metric_reports_missing(self):
        base = _baselines(_result("b", 1.0, name="gone"))
        latest = BenchResult(bench="b", metrics=[], env=_env())
        assert diff_results([latest], base)[0].status == "missing"

    def test_delta_table_renders_every_row(self):
        base = _baselines(_result("b", 1.0, name="r", unit="ratio"))
        lines = format_delta_table(
            diff_results([_result("b", 2.0, name="r", unit="ratio")], base)
        )
        assert any("regression" in line for line in lines)
        assert lines[0].startswith("bench")

    def test_accept_preserves_unmatched_benches(self):
        previous = make_baselines([_result("keep", 1.0)])
        updated = make_baselines([_result("b", 2.0)], previous)
        assert set(updated["benches"]) == {"keep", "b"}


# ------------------------------------------------------------ env + discover


class TestEnvAndDiscovery:
    def test_fingerprint_collects_real_values(self):
        fp = EnvFingerprint.collect()
        assert fp.python == sys.version.split()[0]
        assert fp.cpu_count == (os.cpu_count() or 0)
        assert fp.hostname
        roundtrip = EnvFingerprint.from_dict(fp.to_dict())
        assert roundtrip.matches_machine(fp)

    def test_matches_machine_discriminates(self):
        assert not _env(host="a").matches_machine(_env(host="b"))
        assert not _env(cpu="x").matches_machine(_env(cpu="y"))
        assert _env().matches_machine(_env(sha="different-sha"))

    def test_discover_reads_tier_and_summary(self, tmp_path):
        (tmp_path / "bench_fast.py").write_text(
            '"""Fast one."""\nBENCH_TIER = "smoke"\n'
        )
        (tmp_path / "bench_slow.py").write_text('"""Slow one."""\n')
        specs = {s.name: s for s in discover(tmp_path)}
        assert specs["fast"].tier == "smoke"
        assert specs["fast"].summary == "Fast one."
        assert specs["slow"].tier == "full"
        assert specs["fast"].in_tier("smoke")
        assert not specs["slow"].in_tier("smoke")
        assert specs["slow"].in_tier("full")

    def test_repo_smoke_tier_is_nonempty(self):
        specs = discover(REPO_ROOT / "benchmarks")
        smoke = [s for s in specs if s.tier == "smoke"]
        assert len(smoke) >= 3
        assert {"csr_peeling", "parallel_runtime", "incremental"} <= {
            s.name for s in smoke
        }


# --------------------------------------------------------- CLI end-to-end


FAKE_BENCH = '''
"""Fake bench: one deterministic latency metric, knob-controlled."""
import os

import _shared
from _shared import Contract, Metric

BENCH_TIER = "smoke"


def test_fake_latency():
    latency = float(os.environ.get("REPRO_FAKE_LATENCY", "1.0"))
    _shared.publish(
        _shared.make_result(
            "fake",
            metrics=[
                Metric("latency_seconds", latency, "seconds", "lower"),
                Metric("updates", 42.0, "count", "fixed"),
            ],
            contracts=[Contract("always", True, 0.0, latency)],
            include_rss=False,
        )
    )
'''


@pytest.fixture()
def fake_repo(tmp_path):
    """A minimal repo: benchmarks/ with _shared shim + one fake bench."""
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    # the fake _shared binds the real harness to this tmp repo's paths
    (bench_dir / "_shared.py").write_text(
        "from pathlib import Path\n"
        "from repro.obs import bench as obs_bench\n"
        "from repro.obs.bench import Contract, Metric\n"
        "RESULTS_DIR = Path(__file__).parent / 'results'\n"
        "REPO_ROOT = Path(__file__).resolve().parent.parent\n"
        "def make_result(bench, *, metrics=(), contracts=(), payload=None,\n"
        "                include_rss=True):\n"
        "    return obs_bench.BenchResult(\n"
        "        bench=bench, metrics=list(metrics),\n"
        "        contracts=list(contracts),\n"
        "        env=obs_bench.get_fingerprint(refresh=True),\n"
        "        payload=dict(payload or {}))\n"
        "def publish(result):\n"
        "    return obs_bench.publish(result, RESULTS_DIR,\n"
        "                             root_dir=REPO_ROOT)\n"
    )
    (bench_dir / "bench_fake.py").write_text(FAKE_BENCH)
    return tmp_path


def _cli(args, cwd, extra_env=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAKE_LATENCY", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


class TestCLIEndToEnd:
    def test_run_diff_accept_and_injected_regression(self, fake_repo):
        run = _cli(["bench", "run", "--tier", "smoke"], fake_repo)
        assert run.returncode == 0, run.stdout + run.stderr
        assert "fake" in run.stdout

        trajectory = fake_repo / "benchmarks" / "results" / "trajectory.jsonl"
        entries = read_trajectory(trajectory)
        assert len(entries) == 1
        assert entries[0].env.hostname  # populated EnvFingerprint
        assert entries[0].env.git_sha
        assert (fake_repo / "BENCH_fake.json").exists()  # root copy

        accept = _cli(["bench", "accept"], fake_repo)
        assert accept.returncode == 0, accept.stdout + accept.stderr
        baselines = json.loads(
            (fake_repo / "benchmarks" / "baselines.json").read_text()
        )
        assert "fake" in baselines["benches"]

        # unchanged re-run passes the gate
        rerun = _cli(["bench", "run", "--tier", "smoke"], fake_repo)
        assert rerun.returncode == 0
        diff_ok = _cli(["bench", "diff", "--fail-on-regression"], fake_repo)
        assert diff_ok.returncode == 0, diff_ok.stdout + diff_ok.stderr
        assert "ok" in diff_ok.stdout

        # the acceptance pin: an injected 30% latency regression must flag.
        # the default seconds tolerance is generous for real wall-clock, so
        # the gate is exercised at a matching threshold, as CI would pin it
        # for a deliberately deterministic metric
        slow = _cli(
            ["bench", "run", "--tier", "smoke"],
            fake_repo,
            extra_env={"REPRO_FAKE_LATENCY": "1.3"},
        )
        assert slow.returncode == 0
        bases = json.loads(
            (fake_repo / "benchmarks" / "baselines.json").read_text()
        )
        bases["benches"]["fake"]["metrics"]["latency_seconds"][
            "tolerance"
        ] = 0.25
        (fake_repo / "benchmarks" / "baselines.json").write_text(
            json.dumps(bases)
        )
        diff_bad = _cli(["bench", "diff", "--fail-on-regression"], fake_repo)
        assert diff_bad.returncode == 2, diff_bad.stdout + diff_bad.stderr
        assert "regression" in diff_bad.stdout

        # fixed metrics keep gating too: corrupt the pinned update count
        bases["benches"]["fake"]["metrics"]["updates"]["value"] = 43.0
        (fake_repo / "benchmarks" / "baselines.json").write_text(
            json.dumps(bases)
        )
        diff_fixed = _cli(["bench", "diff"], fake_repo)
        assert diff_fixed.returncode == 2

    def test_history_and_repeat_fold(self, fake_repo):
        run = _cli(
            ["bench", "run", "--tier", "smoke", "--repeat", "2"], fake_repo
        )
        assert run.returncode == 0, run.stdout + run.stderr
        trajectory = fake_repo / "benchmarks" / "results" / "trajectory.jsonl"
        entries = read_trajectory(trajectory)
        # 2 raw repeats + 1 merged republication
        assert len(entries) == 3
        assert entries[-1].repeats == 2

        hist = _cli(["bench", "history", "fake"], fake_repo)
        assert hist.returncode == 0
        assert "latency_seconds" in hist.stdout

        missing = _cli(["bench", "history", "nope"], fake_repo)
        assert missing.returncode == 1

    def test_list_and_only_filter(self, fake_repo):
        out = _cli(["bench", "list"], fake_repo)
        assert out.returncode == 0
        assert "fake" in out.stdout
        none = _cli(["bench", "run", "--only", "zzz*"], fake_repo)
        assert none.returncode == 1
        assert "no benches matched" in none.stdout

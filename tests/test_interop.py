"""Interoperability: biadjacency matrices, scipy sparse, networkx."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.interop import (
    from_biadjacency,
    from_networkx,
    from_scipy_sparse,
    to_biadjacency,
    to_networkx,
    to_scipy_sparse,
)


@pytest.fixture
def sample():
    return BipartiteGraph(3, 4, [(0, 0), (0, 3), (1, 1), (2, 2), (2, 3)])


class TestBiadjacency:
    def test_round_trip(self, sample):
        again = from_biadjacency(to_biadjacency(sample))
        assert sorted(again.edges()) == sorted(sample.edges())

    def test_matrix_shape_and_entries(self, sample):
        m = to_biadjacency(sample)
        assert m.shape == (3, 4)
        assert m.sum() == sample.num_edges
        assert m[0, 3] == 1 and m[1, 0] == 0

    def test_from_weighted_matrix(self):
        m = np.array([[2, 0], [0, 0.5]])
        g = from_biadjacency(m)
        assert sorted(g.edges()) == [(0, 0), (1, 1)]

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            from_biadjacency(np.zeros(3))


class TestScipySparse:
    def test_round_trip(self, sample):
        again = from_scipy_sparse(to_scipy_sparse(sample))
        assert sorted(again.edges()) == sorted(sample.edges())

    def test_csr_properties(self, sample):
        m = to_scipy_sparse(sample)
        assert m.shape == (3, 4)
        assert m.nnz == sample.num_edges


class TestNetworkx:
    def test_round_trip(self, sample):
        nx_graph = to_networkx(sample)
        again, upper_map, lower_map = from_networkx(nx_graph)
        assert again.num_upper == 3 and again.num_lower == 4
        assert again.num_edges == sample.num_edges
        # structure is preserved up to the relabelling maps
        for u, v in sample.edges():
            assert again.has_edge(upper_map[("u", u)], lower_map[("l", v)])

    def test_node_attributes(self, sample):
        nx_graph = to_networkx(sample)
        assert nx_graph.nodes[("u", 0)]["bipartite"] == 0
        assert nx_graph.nodes[("l", 2)]["bipartite"] == 1
        assert nx_graph.number_of_nodes() == 7

    def test_missing_bipartite_attribute(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("a")
        with pytest.raises(ValueError, match="bipartite"):
            from_networkx(g)

    def test_same_layer_edge_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("a", bipartite=0)
        g.add_node("b", bipartite=0)
        g.add_edge("a", "b")
        with pytest.raises(ValueError, match="layers"):
            from_networkx(g)

    def test_decomposition_through_networkx(self, sample):
        # end-to-end: hand a networkx graph to the decomposition
        from repro import bitruss_decomposition

        graph, _u, _l = from_networkx(to_networkx(sample))
        result = bitruss_decomposition(graph)
        assert len(result.phi) == sample.num_edges

"""Tip decomposition (the vertex-level hierarchy of [5])."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.butterfly.enumeration import enumerate_butterflies
from repro.core.tip import (
    butterfly_counts_per_vertex,
    k_tip_vertices,
    tip_decomposition,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_biclique,
    erdos_renyi_bipartite,
    planted_bloom,
)
from tests.conftest import bipartite_graphs


def _reference_tip(graph, layer):
    """Tip numbers straight from the definition (iterated filtering)."""
    n = graph.num_upper if layer == "upper" else graph.num_lower
    theta = np.zeros(n, dtype=np.int64)
    k = 1
    while True:
        alive = k_tip_vertices(graph, k, layer)
        if not alive:
            break
        for u in alive:
            theta[u] = k
        k += 1
    return theta


class TestCounts:
    def test_counts_match_enumeration(self, medium_random):
        counts_u = butterfly_counts_per_vertex(medium_random, "upper")
        counts_l = butterfly_counts_per_vertex(medium_random, "lower")
        expected_u = np.zeros(medium_random.num_upper, dtype=np.int64)
        expected_l = np.zeros(medium_random.num_lower, dtype=np.int64)
        for u, v, w, x in enumerate_butterflies(medium_random):
            expected_u[u] += 1
            expected_u[w] += 1
            expected_l[v] += 1
            expected_l[x] += 1
        np.testing.assert_array_equal(counts_u, expected_u)
        np.testing.assert_array_equal(counts_l, expected_l)

    def test_complete_biclique_counts(self):
        # K_{3,4}: each upper vertex is in C(2,1)*C(4,2) = 12 butterflies
        g = complete_biclique(3, 4)
        counts = butterfly_counts_per_vertex(g, "upper")
        assert counts.tolist() == [12, 12, 12]

    def test_invalid_layer(self, figure4):
        with pytest.raises(ValueError):
            butterfly_counts_per_vertex(figure4, "middle")


class TestDecomposition:
    @pytest.mark.parametrize("layer", ["upper", "lower"])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_definition_random(self, layer, seed):
        g = erdos_renyi_bipartite(8, 8, 36, seed=seed)
        np.testing.assert_array_equal(
            tip_decomposition(g, layer), _reference_tip(g, layer)
        )

    def test_planted_bloom(self):
        g = planted_bloom(5)
        theta = tip_decomposition(g, "upper")
        # both anchor vertices are in C(5,2) = 10 butterflies
        assert theta.tolist() == [10, 10]

    def test_star_all_zero(self):
        g = complete_biclique(1, 6)
        assert tip_decomposition(g, "upper").tolist() == [0]
        assert set(tip_decomposition(g, "lower").tolist()) == {0}

    def test_empty_graph(self):
        g = BipartiteGraph(0, 3)
        assert tip_decomposition(g, "upper").shape == (0,)

    def test_figure4(self, figure4):
        theta = tip_decomposition(figure4, "upper")
        # {u0, u1, u2} form the 2-tip (each in >= 2 butterflies among
        # themselves); u3 only reaches the 1-tip
        assert theta.tolist() == [2, 2, 2, 1]

    def test_invalid_layer(self, figure4):
        with pytest.raises(ValueError):
            tip_decomposition(figure4, "sideways")


class TestKTip:
    def test_k0_everything(self, figure4):
        assert k_tip_vertices(figure4, 0, "upper") == {0, 1, 2, 3}

    def test_negative_k(self, figure4):
        with pytest.raises(ValueError):
            k_tip_vertices(figure4, -2)

    def test_matches_theta_levels(self, medium_random):
        theta = tip_decomposition(medium_random, "upper")
        for k in sorted(set(theta.tolist()))[:4]:
            if k == 0:
                continue
            direct = k_tip_vertices(medium_random, k, "upper")
            from_theta = {int(u) for u in np.nonzero(theta >= k)[0]}
            assert direct == from_theta


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=6, max_lower=6, max_edges=24))
def test_tip_property(graph):
    for layer in ("upper", "lower"):
        np.testing.assert_array_equal(
            tip_decomposition(graph, layer), _reference_tip(graph, layer)
        )

"""Unit tests for the core BipartiteGraph structure."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph, LabelMap, build_labeled_graph


class TestConstruction:
    def test_empty_graph(self):
        g = BipartiteGraph(0, 0)
        assert g.num_edges == 0
        assert g.num_vertices == 0

    def test_basic_edges(self):
        g = BipartiteGraph(2, 3, [(0, 0), (0, 2), (1, 1)])
        assert g.num_edges == 3
        assert g.num_upper == 2
        assert g.num_lower == 3
        assert g.edge_endpoints(1) == (0, 2)

    def test_edge_ids_follow_iteration_order(self):
        edges = [(1, 0), (0, 2), (0, 0)]
        g = BipartiteGraph(2, 3, edges)
        for eid, pair in enumerate(edges):
            assert g.edge_id(*pair) == eid

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BipartiteGraph(2, 2, [(0, 0), (0, 0)])

    def test_duplicate_edge_deduped(self):
        g = BipartiteGraph(2, 2, [(0, 0), (0, 0), (1, 1)], dedup=True)
        assert g.num_edges == 2

    def test_out_of_range_upper(self):
        with pytest.raises(ValueError, match="upper endpoint"):
            BipartiteGraph(2, 2, [(2, 0)])

    def test_out_of_range_lower(self):
        with pytest.raises(ValueError, match="lower endpoint"):
            BipartiteGraph(2, 2, [(0, -1)])

    def test_negative_layer_size(self):
        with pytest.raises(ValueError):
            BipartiteGraph(-1, 2)


class TestAdjacency:
    @pytest.fixture
    def g(self):
        return BipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (2, 2)])

    def test_neighbors(self, g):
        assert sorted(g.neighbors_of_upper(0)) == [0, 1]
        assert sorted(g.neighbors_of_lower(0)) == [0, 1]
        assert g.neighbors_of_upper(2) == [2]

    def test_degrees(self, g):
        assert g.degree_upper(0) == 2
        assert g.degree_lower(0) == 2
        assert g.degree_lower(1) == 1

    def test_degrees_array_by_gid(self, g):
        deg = g.degrees()
        # lower vertices first (gids 0..2), then upper (gids 3..5)
        assert deg.tolist() == [2, 1, 1, 2, 1, 1]

    def test_incident_edge_ids_parallel_to_neighbors(self, g):
        for u in range(g.num_upper):
            for v, eid in zip(g.neighbors_of_upper(u), g.edges_of_upper(u)):
                assert g.edge_endpoints(eid) == (u, v)
        for v in range(g.num_lower):
            for u, eid in zip(g.neighbors_of_lower(v), g.edges_of_lower(v)):
                assert g.edge_endpoints(eid) == (u, v)

    def test_has_edge(self, g):
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 1)

    def test_edge_id_missing_raises(self, g):
        with pytest.raises(KeyError):
            g.edge_id(1, 2)


class TestGlobalIds:
    def test_gid_scheme_upper_above_lower(self):
        g = BipartiteGraph(2, 3, [(0, 0)])
        # every upper gid exceeds every lower gid (the paper's convention)
        assert g.gid_of_upper(0) == 3
        assert g.gid_of_lower(2) == 2
        assert g.is_upper_gid(3)
        assert not g.is_upper_gid(2)
        assert g.upper_of_gid(4) == 1

    def test_adjacency_by_gid_roundtrip(self):
        g = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 1)])
        adj, adj_eids = g.adjacency_by_gid()
        # lower vertex 1 (gid 1) neighbours upper 0 and 1 (gids 2, 3)
        assert sorted(adj[1]) == [2, 3]
        for gid in range(g.num_vertices):
            for nbr, eid in zip(adj[gid], adj_eids[gid]):
                u, v = g.edge_endpoints(eid)
                pair = {g.gid_of_upper(u), g.gid_of_lower(v)}
                assert pair == {gid, nbr}


class TestSubgraphs:
    def test_edge_subgraph_keeps_vertex_space(self):
        g = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        sub, orig = g.subgraph_from_edge_ids([2, 0])
        assert sub.num_upper == 3 and sub.num_lower == 3
        assert orig.tolist() == [0, 2]
        assert sub.has_edge(0, 0) and sub.has_edge(2, 2)
        assert not sub.has_edge(1, 1)

    def test_edge_subgraph_mapping(self):
        g = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        sub, orig = g.subgraph_from_edge_ids([3, 1])
        for new_eid, old_eid in enumerate(orig):
            assert sub.edge_endpoints(new_eid) == g.edge_endpoints(int(old_eid))

    def test_induced_subgraph_relabel(self):
        g = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2), (2, 0)])
        sub = g.induced_subgraph([0, 2], [0, 2])
        assert sub.num_upper == 2 and sub.num_lower == 2
        # vertices 0,2 -> 0,1 in each layer
        assert sorted(sub.edges()) == [(0, 0), (1, 0), (1, 1)]

    def test_induced_subgraph_no_relabel(self):
        g = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        sub = g.induced_subgraph([0, 2], [0, 2], relabel=False)
        assert sub.num_upper == 3
        assert sorted(sub.edges()) == [(0, 0), (2, 2)]

    def test_copy_independent(self):
        g = BipartiteGraph(1, 1, [(0, 0)])
        h = g.copy()
        assert h.num_edges == 1
        assert h is not g


class TestValidation:
    def test_validate_ok(self, medium_random):
        medium_random.validate()

    def test_repr(self):
        g = BipartiteGraph(2, 3, [(0, 0)])
        assert "|U|=2" in repr(g) and "m=1" in repr(g)


class TestLabelMap:
    def test_intern_and_lookup(self):
        lm = LabelMap()
        assert lm.intern("a") == 0
        assert lm.intern("b") == 1
        assert lm.intern("a") == 0
        assert lm.label_of(1) == "b"
        assert lm.id_of("a") == 0
        assert "a" in lm and "c" not in lm
        assert len(lm) == 2
        assert lm.labels() == ["a", "b"]

    def test_build_labeled_graph(self):
        pairs = [("alice", "p1"), ("bob", "p1"), ("alice", "p2"), ("alice", "p1")]
        g, upper, lower = build_labeled_graph(pairs)
        assert g.num_edges == 3  # duplicate dropped
        assert g.num_upper == 2 and g.num_lower == 2
        assert g.has_edge(upper.id_of("bob"), lower.id_of("p1"))

"""Unit and property tests for the peeling bucket queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bucket_queue import BucketQueue, LazyMinHeap


class TestBasics:
    def test_push_pop_single(self):
        q = BucketQueue()
        q.push(7, 3)
        assert len(q) == 1
        assert q.peek_min_key() == 3
        assert q.pop_min() == (7, 3)
        assert q.is_empty()

    def test_pop_order(self):
        q = BucketQueue()
        for item, key in [(0, 5), (1, 2), (2, 9), (3, 2)]:
            q.push(item, key)
        popped = [q.pop_min() for _ in range(4)]
        keys = [k for _, k in popped]
        assert keys == sorted(keys)
        assert {i for i, k in popped if k == 2} == {1, 3}

    def test_duplicate_push_rejected(self):
        q = BucketQueue()
        q.push(1, 1)
        with pytest.raises(ValueError):
            q.push(1, 2)

    def test_negative_key_rejected(self):
        q = BucketQueue()
        with pytest.raises(ValueError):
            q.push(1, -1)
        q.push(2, 0)
        with pytest.raises(ValueError):
            q.update(2, -3)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BucketQueue().pop_min()

    def test_contains_and_key(self):
        q = BucketQueue()
        q.push(4, 10)
        assert 4 in q and 5 not in q
        assert q.key(4) == 10

    def test_remove(self):
        q = BucketQueue()
        q.push(1, 1)
        q.push(2, 2)
        assert q.remove(1) == 1
        assert q.pop_min() == (2, 2)

    def test_from_keys(self):
        q = BucketQueue.from_keys([3, 0, 3])
        assert q.pop_min() == (1, 0)
        assert len(q) == 2

    def test_clear(self):
        q = BucketQueue.from_keys([1, 2])
        q.clear()
        assert q.is_empty()


class TestUpdates:
    def test_decrease_key_moves_floor_back(self):
        q = BucketQueue()
        q.push(1, 5)
        q.push(2, 7)
        assert q.peek_min_key() == 5
        q.update(2, 1)  # decrease below the scanned floor
        assert q.pop_min() == (2, 1)
        assert q.pop_min() == (1, 5)

    def test_increase_key(self):
        q = BucketQueue()
        q.push(1, 1)
        q.push(2, 2)
        q.update(1, 10)
        assert q.pop_min() == (2, 2)
        assert q.pop_min() == (1, 10)

    def test_noop_update(self):
        q = BucketQueue()
        q.push(1, 4)
        q.update(1, 4)
        assert q.key(1) == 4


class TestBatches:
    def test_pop_min_batch(self):
        q = BucketQueue.from_keys([2, 1, 1, 3, 1])
        items, key = q.pop_min_batch()
        assert key == 1
        assert sorted(items) == [1, 2, 4]
        assert len(q) == 2

    def test_items_at_min_nondestructive(self):
        q = BucketQueue.from_keys([1, 1, 5])
        items, key = q.items_at_min()
        assert key == 1 and sorted(items) == [0, 1]
        assert len(q) == 3

    def test_pop_level(self):
        q = BucketQueue.from_keys([0, 1, 2, 3, 4])
        drained = q.pop_level(2)
        assert sorted(drained) == [0, 1, 2]
        assert q.peek_min_key() == 3

    def test_pop_level_nothing(self):
        q = BucketQueue.from_keys([5])
        assert q.pop_level(2) == []
        assert len(q) == 1


# Random operation sequences: BucketQueue must behave exactly like the
# straightforward heap implementation.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "update", "pop", "pop_batch"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=20),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_bucket_queue_matches_heap(ops):
    bucket = BucketQueue()
    heap = LazyMinHeap()
    for op, item, key in ops:
        if op == "push":
            if item in bucket:
                continue
            bucket.push(item, key)
            heap.push(item, key)
        elif op == "update":
            if item not in bucket:
                continue
            bucket.update(item, key)
            heap.update(item, key)
        elif op == "pop":
            if bucket.is_empty():
                assert heap.is_empty()
                continue
            # Tie-broken item choice may differ between implementations, so
            # pop from the bucket queue and check the heap agrees on the key.
            popped, bk = bucket.pop_min()
            assert heap.peek_min_key() == bk
            assert heap.key(popped) == bk
            heap.remove(popped)
        elif op == "pop_batch":
            if bucket.is_empty():
                continue
            items, key = bucket.pop_min_batch()
            for it in items:
                assert heap.key(it) == key
                heap.remove(it)
    assert len(bucket) == len(heap)
    for it in list(bucket):
        assert heap.key(it) == bucket.key(it)

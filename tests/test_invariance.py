"""Structural invariance properties of the decomposition.

The bitruss number of an edge is a property of the graph's *structure*, so
it must be invariant under vertex relabelling and under swapping the two
layers — even though the BE-Index built along the way (which depends on the
id-based priority tie-break) may differ completely.  These tests pin that
down, plus persistence round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bit_bu_plus_plus, bit_pc
from repro.core.result import load_decomposition, save_decomposition
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import erdos_renyi_bipartite
from tests.conftest import bipartite_graphs


def _relabel(graph, perm_u, perm_l):
    edges = [(perm_u[u], perm_l[v]) for u, v in graph.edges()]
    return BipartiteGraph(graph.num_upper, graph.num_lower, edges)


def _swap_layers(graph):
    edges = [(v, u) for u, v in graph.edges()]
    return BipartiteGraph(graph.num_lower, graph.num_upper, edges)


@pytest.mark.parametrize("seed", range(5))
def test_relabelling_invariance(seed):
    g = erdos_renyi_bipartite(10, 10, 50, seed=seed)
    rng = np.random.default_rng(seed + 100)
    perm_u = rng.permutation(g.num_upper)
    perm_l = rng.permutation(g.num_lower)
    relabelled = _relabel(g, perm_u, perm_l)

    phi = bit_bu_plus_plus(g).phi
    phi_relabelled = bit_bu_plus_plus(relabelled)
    for eid, (u, v) in enumerate(g.edges()):
        assert phi[eid] == phi_relabelled.phi_of(int(perm_u[u]), int(perm_l[v]))


@pytest.mark.parametrize("seed", range(5))
def test_layer_swap_invariance(seed):
    g = erdos_renyi_bipartite(9, 11, 45, seed=seed)
    swapped = _swap_layers(g)
    phi = bit_bu_plus_plus(g).phi
    phi_swapped = bit_bu_plus_plus(swapped)
    for eid, (u, v) in enumerate(g.edges()):
        assert phi[eid] == phi_swapped.phi_of(v, u)


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=7, max_lower=7, max_edges=28),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_invariance_property(graph, seed):
    """Relabelling + layer swap leave every bitruss number unchanged."""
    rng = np.random.default_rng(seed)
    perm_u = rng.permutation(graph.num_upper)
    perm_l = rng.permutation(graph.num_lower)
    transformed = _swap_layers(_relabel(graph, perm_u, perm_l))
    phi = bit_pc(graph, tau=0.5).phi
    phi_t = bit_pc(transformed, tau=0.5)
    for eid, (u, v) in enumerate(graph.edges()):
        assert phi[eid] == phi_t.phi_of(int(perm_l[v]), int(perm_u[u]))


class TestPersistence:
    def test_round_trip(self, tmp_path, medium_random):
        result = bit_bu_plus_plus(medium_random)
        path = tmp_path / "decomposition.json"
        save_decomposition(result, path)
        loaded = load_decomposition(path)
        np.testing.assert_array_equal(loaded.phi, result.phi)
        assert loaded.graph.num_edges == medium_random.num_edges
        assert loaded.stats.algorithm == "BiT-BU++"
        # queries keep working on the loaded object
        assert loaded.max_k == result.max_k
        assert loaded.hierarchy() == result.hierarchy()

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a saved"):
            load_decomposition(path)

"""Graph/decomposition analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    hub_edge_report,
    phi_distribution,
    profile_graph,
    recommend_algorithm,
)
from repro.core import bit_bu_plus_plus
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    chung_lu_bipartite,
    complete_biclique,
    erdos_renyi_bipartite,
)


class TestProfile:
    def test_complete_biclique(self):
        p = profile_graph(complete_biclique(3, 4))
        assert p.num_edges == 12
        assert p.max_degree_upper == 4 and p.mean_degree_upper == 4.0
        assert p.butterflies == 18
        assert p.support_max == 6

    def test_empty(self):
        p = profile_graph(BipartiteGraph(0, 0))
        assert p.num_edges == 0 and p.butterflies == 0

    def test_skew_indicator(self):
        g = chung_lu_bipartite(400, 400, 2000, exponent_upper=1.8,
                               exponent_lower=1.8, seed=1)
        p = profile_graph(g)
        assert p.degree_skew_upper > 3.0


class TestHubReport:
    def test_gap_on_skewed_graph(self):
        g = chung_lu_bipartite(400, 25, 1500, exponent_upper=2.5,
                               exponent_lower=1.7, seed=2)
        result = bit_bu_plus_plus(g)
        report = hub_edge_report(g, result, top_n=5)
        assert report.support_max >= report.phi_max
        assert len(report.hub_edges) == 5
        # list is ordered by support - phi descending
        gaps = [s - p for _e, s, p in report.hub_edges]
        assert gaps == sorted(gaps, reverse=True)
        assert report.has_hub_edges

    def test_no_gap_on_biclique(self):
        g = complete_biclique(3, 3)
        result = bit_bu_plus_plus(g)
        report = hub_edge_report(g, result)
        # every edge: support == phi == 4
        assert report.gap_ratio == 1.0
        assert not report.has_hub_edges
        assert report.support_phi_correlation == 1.0

    def test_empty_graph(self):
        g = BipartiteGraph(1, 1)
        report = hub_edge_report(g, bit_bu_plus_plus(g))
        assert report.hub_edges == []


class TestDistributionsAndAdvice:
    def test_phi_distribution_sums_to_m(self):
        g = erdos_renyi_bipartite(12, 12, 70, seed=3)
        result = bit_bu_plus_plus(g)
        dist = phi_distribution(result)
        assert sum(dist.values()) == g.num_edges
        assert max(dist) == result.max_k

    def test_recommends_pc_for_lopsided(self):
        g = chung_lu_bipartite(1000, 20, 3000, exponent_upper=2.4,
                               exponent_lower=1.8, seed=4)
        algorithm, reason = recommend_algorithm(g)
        assert algorithm == "bit-pc"
        assert "hub" in reason

    def test_recommends_bu_for_even(self):
        g = erdos_renyi_bipartite(40, 40, 300, seed=5)
        algorithm, _reason = recommend_algorithm(g)
        assert algorithm == "bit-bu++"

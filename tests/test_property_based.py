"""Hypothesis property tests over random bipartite graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly.counting import count_per_edge
from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import edges_to_csr_chunked
from repro.core import (
    bit_bs,
    bit_bu,
    bit_bu_plus,
    bit_bu_plus_plus,
    bit_pc,
    k_bitruss_direct,
    reference_decomposition,
)
from tests.conftest import assert_phi_equal, bipartite_graphs


@settings(max_examples=50, deadline=None)
@given(bipartite_graphs())
def test_all_algorithms_agree(graph):
    """BS, BU, BU+, BU++ and PC return identical bitruss numbers."""
    expected = bit_bs(graph).phi
    for fn in (bit_bu, bit_bu_plus, bit_bu_plus_plus):
        assert_phi_equal(fn(graph).phi, expected, fn.__name__)
    for tau in (0.02, 0.5, 1.0):
        assert_phi_equal(bit_pc(graph, tau=tau).phi, expected, f"pc tau={tau}")


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=7, max_lower=7, max_edges=30))
def test_matches_definition(graph):
    """The fast algorithms agree with the from-definition reference."""
    expected = reference_decomposition(graph)
    assert_phi_equal(bit_bu_plus_plus(graph).phi, expected, "bu++ vs definition")


@settings(max_examples=40, deadline=None)
@given(bipartite_graphs())
def test_phi_bounded_by_support(graph):
    """phi(e) <= sup(e): an edge cannot outrank its butterfly support."""
    support = count_per_edge(graph)
    phi = bit_bu_plus_plus(graph).phi
    assert np.all(phi <= support)


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=7, max_lower=7, max_edges=28))
def test_level_sets_match_direct_bitruss(graph):
    """For every occurring k, {e : phi(e) >= k} is exactly the k-bitruss."""
    phi = bit_bu_plus_plus(graph).phi
    for k in sorted(set(int(v) for v in phi))[:4]:
        direct = set(k_bitruss_direct(graph, k))
        from_phi = {int(e) for e in np.nonzero(phi >= k)[0]}
        assert direct == from_phi


@settings(max_examples=40, deadline=None)
@given(bipartite_graphs())
def test_zero_phi_iff_no_surviving_butterflies(graph):
    """phi(e) = 0 exactly when e survives in no 1-bitruss."""
    phi = bit_bu_plus_plus(graph).phi
    one_bitruss = set(k_bitruss_direct(graph, 1))
    for eid in range(graph.num_edges):
        assert (phi[eid] >= 1) == (eid in one_bitruss)


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs())
def test_decomposition_is_permutation_invariant_of_algorithm_state(graph):
    """Running the same algorithm twice gives identical results."""
    first = bit_bu_plus_plus(graph).phi
    second = bit_bu_plus_plus(graph).phi
    assert_phi_equal(first, second, "repeatability")


@st.composite
def messy_edge_lists(draw, max_upper: int = 12, max_lower: int = 9):
    """Unsorted edge lists **with duplicates** plus their layer sizes."""
    n_u = draw(st.integers(min_value=1, max_value=max_upper))
    n_l = draw(st.integers(min_value=1, max_value=max_lower))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_u - 1),
                st.integers(min_value=0, max_value=n_l - 1),
            ),
            min_size=0,
            max_size=70,
        )
    )
    return n_u, n_l, edges


@settings(max_examples=60, deadline=None)
@given(messy_edge_lists())
def test_chunked_csr_matches_constructor(params):
    """edges_to_csr_chunked == the dict-based constructor, bitwise.

    Duplicates and arbitrary input order included; every chunk size must
    yield the same arrays — same dedup survivors, same stable CSR order.
    """
    n_u, n_l, edges = params
    expected = BipartiteGraph(n_u, n_l, edges, dedup=True)
    arr = (
        np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges
        else np.empty((0, 2), dtype=np.int64)
    )
    for chunk_edges in (1, 7, 4096):
        chunks = [
            arr[i : i + chunk_edges] for i in range(0, len(arr), chunk_edges)
        ]
        streamed = edges_to_csr_chunked(
            iter(chunks), num_upper=n_u, num_lower=n_l
        )
        context = f"chunk_edges={chunk_edges}"
        assert streamed.num_upper == expected.num_upper, context
        assert streamed.num_lower == expected.num_lower, context
        assert np.array_equal(
            streamed.edge_upper, expected.edge_upper
        ), context
        assert np.array_equal(
            streamed.edge_lower, expected.edge_lower
        ), context
        for got, want in zip(
            streamed.csr_upper() + streamed.csr_lower(),
            expected.csr_upper() + expected.csr_lower(),
        ):
            assert got.dtype == want.dtype, context
            assert np.array_equal(got, want), context


@settings(max_examples=40, deadline=None)
@given(messy_edge_lists())
def test_chunked_csr_infers_layer_sizes(params):
    """Layer-size inference (max id + 1) matches explicit sizes."""
    n_u, n_l, edges = params
    if not edges:
        return
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    inferred = edges_to_csr_chunked(iter([arr]))
    assert inferred.num_upper == int(arr[:, 0].max()) + 1
    assert inferred.num_lower == int(arr[:, 1].max()) + 1
    explicit = edges_to_csr_chunked(
        iter([arr]),
        num_upper=inferred.num_upper,
        num_lower=inferred.num_lower,
    )
    assert np.array_equal(inferred.edge_upper, explicit.edge_upper)
    assert np.array_equal(inferred.edge_lower, explicit.edge_lower)

"""Hypothesis property tests over random bipartite graphs."""

import numpy as np
from hypothesis import given, settings

from repro.butterfly.counting import count_per_edge
from repro.core import (
    bit_bs,
    bit_bu,
    bit_bu_plus,
    bit_bu_plus_plus,
    bit_pc,
    k_bitruss_direct,
    reference_decomposition,
)
from tests.conftest import assert_phi_equal, bipartite_graphs


@settings(max_examples=50, deadline=None)
@given(bipartite_graphs())
def test_all_algorithms_agree(graph):
    """BS, BU, BU+, BU++ and PC return identical bitruss numbers."""
    expected = bit_bs(graph).phi
    for fn in (bit_bu, bit_bu_plus, bit_bu_plus_plus):
        assert_phi_equal(fn(graph).phi, expected, fn.__name__)
    for tau in (0.02, 0.5, 1.0):
        assert_phi_equal(bit_pc(graph, tau=tau).phi, expected, f"pc tau={tau}")


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=7, max_lower=7, max_edges=30))
def test_matches_definition(graph):
    """The fast algorithms agree with the from-definition reference."""
    expected = reference_decomposition(graph)
    assert_phi_equal(bit_bu_plus_plus(graph).phi, expected, "bu++ vs definition")


@settings(max_examples=40, deadline=None)
@given(bipartite_graphs())
def test_phi_bounded_by_support(graph):
    """phi(e) <= sup(e): an edge cannot outrank its butterfly support."""
    support = count_per_edge(graph)
    phi = bit_bu_plus_plus(graph).phi
    assert np.all(phi <= support)


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=7, max_lower=7, max_edges=28))
def test_level_sets_match_direct_bitruss(graph):
    """For every occurring k, {e : phi(e) >= k} is exactly the k-bitruss."""
    phi = bit_bu_plus_plus(graph).phi
    for k in sorted(set(int(v) for v in phi))[:4]:
        direct = set(k_bitruss_direct(graph, k))
        from_phi = {int(e) for e in np.nonzero(phi >= k)[0]}
        assert direct == from_phi


@settings(max_examples=40, deadline=None)
@given(bipartite_graphs())
def test_zero_phi_iff_no_surviving_butterflies(graph):
    """phi(e) = 0 exactly when e survives in no 1-bitruss."""
    phi = bit_bu_plus_plus(graph).phi
    one_bitruss = set(k_bitruss_direct(graph, 1))
    for eid in range(graph.num_edges):
        assert (phi[eid] >= 1) == (eid in one_bitruss)


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs())
def test_decomposition_is_permutation_invariant_of_algorithm_state(graph):
    """Running the same algorithm twice gives identical results."""
    first = bit_bu_plus_plus(graph).phi
    second = bit_bu_plus_plus(graph).phi
    assert_phi_equal(first, second, "repeatability")

"""(α, β)-core computation and the degree-based bitruss prefilter."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.butterfly.counting import count_per_edge
from repro.cohesion.ab_core import (
    ab_core_decomposition_for_alpha,
    alpha_beta_core,
    degree_prefilter_for_bitruss,
)
from repro.core import bit_bu_plus_plus, k_bitruss_direct
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_biclique, erdos_renyi_bipartite
from tests.conftest import bipartite_graphs


class TestAlphaBetaCore:
    def test_complete_biclique_core(self):
        g = complete_biclique(3, 4)
        uppers, lowers = alpha_beta_core(g, 4, 3)
        assert uppers == {0, 1, 2}
        assert lowers == {0, 1, 2, 3}

    def test_core_does_not_exist(self):
        g = complete_biclique(3, 4)
        uppers, lowers = alpha_beta_core(g, 5, 1)
        assert uppers == set() and lowers == set()

    def test_figure4_core(self, figure4):
        # (2,2)-core: drop the pendants, then v2's degree is 2 and all of
        # u0..u3, v0..v2 survive
        uppers, lowers = alpha_beta_core(figure4, 2, 2)
        assert uppers == {0, 1, 2, 3}
        assert lowers == {0, 1, 2}

    def test_invariant_degrees(self, medium_random):
        uppers, lowers = alpha_beta_core(medium_random, 3, 4)
        if not uppers:
            return
        for u in uppers:
            inside = sum(
                1 for v in medium_random.neighbors_of_upper(u) if v in lowers
            )
            assert inside >= 3
        for v in lowers:
            inside = sum(
                1 for u in medium_random.neighbors_of_lower(v) if u in uppers
            )
            assert inside >= 4

    def test_zero_zero_core_is_everything(self, medium_random):
        uppers, lowers = alpha_beta_core(medium_random, 0, 0)
        assert len(uppers) == medium_random.num_upper
        assert len(lowers) == medium_random.num_lower

    def test_negative_parameters(self, figure4):
        with pytest.raises(ValueError):
            alpha_beta_core(figure4, -1, 0)

    def test_monotone_in_alpha(self, medium_random):
        prev_u = None
        for alpha in range(1, 5):
            uppers, _lowers = alpha_beta_core(medium_random, alpha, 2)
            if prev_u is not None:
                assert uppers <= prev_u
            prev_u = uppers


class TestDecompositionForAlpha:
    def test_max_beta_values(self):
        g = complete_biclique(3, 4)
        betas = ab_core_decomposition_for_alpha(g, 2)
        # every lower vertex survives down to beta = 3 (its degree)
        assert betas.tolist() == [3, 3, 3, 3]

    def test_isolated_lower_vertex(self):
        g = BipartiteGraph(2, 3, [(0, 0), (1, 0), (0, 1), (1, 1)])
        betas = ab_core_decomposition_for_alpha(g, 1)
        assert betas[2] == 0
        assert betas[0] == 2 and betas[1] == 2


class TestPrefilter:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_prefilter_preserves_k_bitruss(self, k):
        g = erdos_renyi_bipartite(14, 14, 90, seed=k)
        sub, eids = degree_prefilter_for_bitruss(g, k)
        bitruss = set(k_bitruss_direct(g, k))
        assert bitruss <= set(int(e) for e in eids)

    def test_prefilter_drops_pendants(self, figure4):
        sub, eids = degree_prefilter_for_bitruss(figure4, 1)
        assert figure4.edge_id(2, 3) not in set(eids.tolist())
        assert figure4.edge_id(3, 4) not in set(eids.tolist())

    def test_prefilter_k0_identity(self, figure4):
        sub, eids = degree_prefilter_for_bitruss(figure4, 0)
        assert len(eids) == figure4.num_edges

    def test_prefilter_negative_k(self, figure4):
        with pytest.raises(ValueError):
            degree_prefilter_for_bitruss(figure4, -1)

    def test_prefiltered_decomposition_matches(self):
        # decomposing the prefiltered graph reproduces the deep levels
        g = erdos_renyi_bipartite(12, 12, 70, seed=9)
        full = bit_bu_plus_plus(g).phi
        k = 2
        sub, eids = degree_prefilter_for_bitruss(g, k)
        if sub.num_edges == 0:
            assert not np.any(full >= k)
            return
        sub_phi = bit_bu_plus_plus(sub).phi
        for sub_eid, orig_eid in enumerate(eids):
            if full[orig_eid] >= k:
                assert sub_phi[sub_eid] == full[orig_eid]


@settings(max_examples=30, deadline=None)
@given(bipartite_graphs())
def test_prefilter_containment_property(graph):
    """For every k, the degree prefilter keeps the whole k-bitruss."""
    support = count_per_edge(graph)
    if not len(support):
        return
    k = max(1, int(support.max()) // 2)
    _sub, eids = degree_prefilter_for_bitruss(graph, k)
    bitruss = set(k_bitruss_direct(graph, k))
    assert bitruss <= set(int(e) for e in eids)

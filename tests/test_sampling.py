"""Vertex sampling (the Fig. 12 scalability workload)."""

import pytest

from repro.graph.generators import erdos_renyi_bipartite
from repro.graph.sampling import sample_vertices


@pytest.fixture
def base_graph():
    return erdos_renyi_bipartite(50, 60, 600, seed=1)


def test_full_fraction_returns_copy(base_graph):
    sampled = sample_vertices(base_graph, 1.0, seed=0)
    assert sampled.num_edges == base_graph.num_edges
    assert sampled is not base_graph


def test_layer_sizes_scale(base_graph):
    sampled = sample_vertices(base_graph, 0.4, seed=0)
    assert sampled.num_upper == 20
    assert sampled.num_lower == 24


def test_monotone_edge_counts(base_graph):
    sizes = [
        sample_vertices(base_graph, f, seed=5).num_edges
        for f in (0.2, 0.4, 0.6, 0.8, 1.0)
    ]
    # random induced subgraphs: statistically increasing; enforce weak
    # monotonicity over the seeded draws we actually use
    assert sizes == sorted(sizes)


def test_deterministic(base_graph):
    a = sample_vertices(base_graph, 0.5, seed=3)
    b = sample_vertices(base_graph, 0.5, seed=3)
    assert sorted(a.edges()) == sorted(b.edges())


def test_edges_are_induced(base_graph):
    sampled = sample_vertices(base_graph, 0.5, seed=3, relabel=False)
    for u, v in sampled.edges():
        assert base_graph.has_edge(u, v)


def test_invalid_fraction(base_graph):
    with pytest.raises(ValueError):
        sample_vertices(base_graph, 0.0)
    with pytest.raises(ValueError):
        sample_vertices(base_graph, 1.2)


def test_tiny_fraction_keeps_at_least_one_vertex(base_graph):
    sampled = sample_vertices(base_graph, 0.01, seed=0)
    assert sampled.num_upper >= 1 and sampled.num_lower >= 1


class TestNestedSampling:
    def test_nested_containment(self, base_graph):
        from repro.graph.sampling import nested_sample_fractions

        samples = nested_sample_fractions(
            base_graph, (0.2, 0.6, 1.0), seed=1, relabel=False
        )
        small, mid, full = (set(s.edges()) for s in samples)
        assert small <= mid <= full
        assert full == set(base_graph.edges())

    def test_monotone_edge_counts(self, base_graph):
        from repro.graph.sampling import nested_sample_fractions

        samples = nested_sample_fractions(
            base_graph, (0.2, 0.4, 0.6, 0.8, 1.0), seed=2
        )
        counts = [s.num_edges for s in samples]
        assert counts == sorted(counts)

    def test_invalid_fraction(self, base_graph):
        from repro.graph.sampling import nested_sample_fractions

        import pytest as _pytest
        with _pytest.raises(ValueError):
            nested_sample_fractions(base_graph, (0.5, 0.0), seed=1)

"""The bundled dataset registry."""

import pytest

from repro.datasets import (
    HUB_SHOWCASE,
    REPRESENTATIVE,
    dataset_names,
    dataset_spec,
    load_dataset,
)


def test_fifteen_datasets_like_the_paper():
    assert len(dataset_names()) == 15


def test_representatives_registered():
    names = set(dataset_names())
    assert set(REPRESENTATIVE) <= names
    assert HUB_SHOWCASE in names


def test_unknown_dataset():
    with pytest.raises(KeyError):
        dataset_spec("nope")
    with pytest.raises(KeyError):
        load_dataset("nope")


@pytest.mark.parametrize("name", ["condmat", "marvel", "github"])
def test_load_and_validate(name):
    g = load_dataset(name)
    g.validate()
    assert g.num_edges > 0
    spec = dataset_spec(name)
    assert spec.description


def test_deterministic_generation():
    a = load_dataset("condmat", cache=False)
    b = load_dataset("condmat", cache=False)
    assert sorted(a.edges()) == sorted(b.edges())


def test_cache_returns_same_object():
    a = load_dataset("marvel")
    b = load_dataset("marvel")
    assert a is b
    c = load_dataset("marvel", cache=False)
    assert c is not a


def test_bs_friendly_flags():
    # mirrors the paper: BiT-BS is INF on wiki-it and wiki-fr only
    assert not dataset_spec("wiki-it").bs_friendly
    assert not dataset_spec("wiki-fr").bs_friendly
    assert dataset_spec("d-style").bs_friendly
    assert dataset_spec("github").bs_friendly

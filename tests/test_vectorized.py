"""Vectorized butterfly counting equals the scalar implementation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.butterfly.counting import count_butterflies_total, count_per_edge
from repro.butterfly.vectorized import (
    count_per_edge_vectorized,
    count_total_vectorized,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    chung_lu_bipartite,
    complete_biclique,
    erdos_renyi_bipartite,
    planted_bloom,
)
from tests.conftest import bipartite_graphs


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = erdos_renyi_bipartite(15, 15, 100, seed=seed)
        np.testing.assert_array_equal(
            count_per_edge_vectorized(g), count_per_edge(g)
        )

    def test_skewed_graph(self):
        g = chung_lu_bipartite(200, 20, 900, exponent_upper=2.4,
                               exponent_lower=1.8, seed=5)
        np.testing.assert_array_equal(
            count_per_edge_vectorized(g), count_per_edge(g)
        )

    def test_structured_graphs(self):
        for g in (complete_biclique(4, 5), planted_bloom(7)):
            np.testing.assert_array_equal(
                count_per_edge_vectorized(g), count_per_edge(g)
            )

    def test_total(self, medium_random):
        assert count_total_vectorized(medium_random) == count_butterflies_total(
            medium_random
        )

    def test_empty_graph(self):
        g = BipartiteGraph(0, 0)
        assert count_per_edge_vectorized(g).shape == (0,)

    def test_no_butterflies(self):
        g = BipartiteGraph(2, 2, [(0, 0), (1, 1)])
        assert count_per_edge_vectorized(g).tolist() == [0, 0]

    def test_with_supplied_priorities(self, medium_random):
        from repro.utils.priority import vertex_priorities

        prio = vertex_priorities(medium_random.degrees())
        np.testing.assert_array_equal(
            count_per_edge_vectorized(medium_random, priorities=prio),
            count_per_edge(medium_random, priorities=prio),
        )


@settings(max_examples=40, deadline=None)
@given(bipartite_graphs())
def test_vectorized_property(graph):
    np.testing.assert_array_equal(
        count_per_edge_vectorized(graph), count_per_edge(graph)
    )

"""Application layers: fraud, research groups, recommendation."""

import numpy as np
import pytest

from repro.apps.fraud import detect_fraud_candidates
from repro.apps.recommendation import recommend_items, similarity_tiers
from repro.apps.research_groups import research_group_hierarchy
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    chung_lu_bipartite,
    nested_communities,
    paper_figure1_graph,
)


def _planted_fraud_graph():
    background = chung_lu_bipartite(120, 80, 500, seed=55)
    edges = set(background.edges())
    for u in range(120, 130):
        for v in range(80, 86):
            edges.add((u, v))
    return BipartiteGraph(130, 86, sorted(edges)), set(range(120, 130)), set(range(80, 86))


class TestFraud:
    def test_finds_planted_block(self):
        graph, users, pages = _planted_fraud_graph()
        report = detect_fraud_candidates(graph, min_level=3, max_core_fraction=0.3)
        assert report.level >= 3
        assert users <= report.users
        assert pages <= report.pages
        assert report.density > 0.5

    def test_no_core_in_sparse_graph(self):
        g = BipartiteGraph(4, 4, [(0, 0), (1, 1), (2, 2), (3, 3)])
        report = detect_fraud_candidates(g, min_level=2)
        assert report.level == 0
        assert report.users == set() and report.edges == []
        assert report.density == 0.0

    def test_invalid_fraction(self):
        g = paper_figure1_graph()
        with pytest.raises(ValueError):
            detect_fraud_candidates(g, max_core_fraction=0.0)


class TestResearchGroups:
    def test_figure1_hierarchy(self):
        hierarchy = research_group_hierarchy(paper_figure1_graph())
        ks = [level.k for level in hierarchy.levels]
        assert ks == [1, 2]
        # the 2-level group is {u0, u1, u2} x {v0, v1}
        authors, papers = hierarchy.levels[-1].groups[0]
        assert authors == {0, 1, 2}
        assert papers == {0, 1}

    def test_nested_sizes_shrink(self):
        g = nested_communities(
            [(16, 16, 0.3), (6, 6, 1.0)], noise_edges=40, seed=9
        )
        hierarchy = research_group_hierarchy(g, levels=3)
        sizes = [
            sum(len(a) + len(p) for a, p in level.groups)
            for level in hierarchy.levels
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_tightest_groups_nonempty(self):
        g = nested_communities([(5, 5, 1.0)], seed=0)
        hierarchy = research_group_hierarchy(g)
        assert hierarchy.tightest_groups()

    def test_butterfly_free_graph(self):
        g = BipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        hierarchy = research_group_hierarchy(g)
        assert hierarchy.levels == []

    def test_level_subsampling(self):
        g = nested_communities([(10, 10, 0.5), (4, 4, 1.0)], seed=3)
        full = research_group_hierarchy(g)
        sampled = research_group_hierarchy(g, levels=2)
        assert len(sampled.levels) <= 2
        assert len(full.levels) >= len(sampled.levels)


class TestRecommendation:
    def test_tiers_nested(self):
        g = nested_communities(
            [(12, 12, 0.4), (5, 5, 1.0)], noise_edges=30, seed=4
        )
        tiers = similarity_tiers(g)
        ks = sorted(tiers.tiers)
        for k1, k2 in zip(ks, ks[1:]):
            users1, items1 = tiers.tiers[k1]
            users2, items2 = tiers.tiers[k2]
            assert users2 <= users1 and items2 <= items1

    def test_item_tier(self):
        g = nested_communities([(4, 4, 1.0)], num_extra_lower=2, seed=0)
        tiers = similarity_tiers(g)
        assert tiers.item_tier(0) == 9  # inside the complete 4x4 block
        assert tiers.item_tier(5) == 0  # isolated fringe item

    def test_recommendations_exclude_owned(self):
        g = nested_communities(
            [(12, 12, 0.5), (5, 5, 1.0)], noise_edges=20, seed=6
        )
        user = 0
        owned = set(g.neighbors_of_upper(user))
        for item, score in recommend_items(g, user, top_n=20):
            assert item not in owned
            assert score >= 1

    def test_recommendations_ranked(self):
        g = nested_communities(
            [(12, 12, 0.5), (5, 5, 1.0)], noise_edges=20, seed=6
        )
        recs = recommend_items(g, 0, top_n=10)
        scores = [s for _, s in recs]
        assert scores == sorted(scores, reverse=True)

"""Tests of the synthetic graph generators."""

import numpy as np
import pytest

from repro.butterfly.counting import count_butterflies_total, count_per_edge
from repro.graph.generators import (
    affiliation_bipartite,
    chung_lu_bipartite,
    complete_biclique,
    erdos_renyi_bipartite,
    hub_edge_example,
    nested_communities,
    paper_figure1_graph,
    paper_figure4_graph,
    planted_bloom,
    power_law_weights,
    union_graphs,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_bipartite(10, 12, 37, seed=1)
        assert g.num_edges == 37
        g.validate()

    def test_deterministic(self):
        a = erdos_renyi_bipartite(8, 8, 20, seed=5)
        b = erdos_renyi_bipartite(8, 8, 20, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = erdos_renyi_bipartite(10, 10, 30, seed=1)
        b = erdos_renyi_bipartite(10, 10, 30, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_bipartite(2, 2, 5)

    def test_full_grid(self):
        g = erdos_renyi_bipartite(3, 3, 9, seed=0)
        assert g.num_edges == 9


class TestChungLu:
    def test_edge_count_and_determinism(self):
        a = chung_lu_bipartite(50, 60, 300, seed=3)
        b = chung_lu_bipartite(50, 60, 300, seed=3)
        assert a.num_edges == 300
        assert sorted(a.edges()) == sorted(b.edges())

    def test_skewed_degrees(self):
        g = chung_lu_bipartite(
            300, 300, 1500, exponent_upper=1.8, exponent_lower=1.8, seed=4
        )
        degrees = sorted((g.degree_upper(u) for u in range(300)), reverse=True)
        # heavy tail: the top vertex should dominate the median
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= max(4 * max(median, 1), 8)

    def test_power_law_weights_clip(self):
        rng = np.random.default_rng(0)
        w = power_law_weights(1000, 1.5, rng=rng, max_weight=10.0)
        assert w.max() <= 10.0
        assert w.min() >= 1.0

    def test_power_law_invalid_exponent(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            power_law_weights(10, 1.0, rng=rng)


class TestStructured:
    def test_complete_biclique(self):
        g = complete_biclique(3, 4)
        assert g.num_edges == 12
        # K_{a,b} holds C(a,2)*C(b,2) butterflies
        assert count_butterflies_total(g) == 3 * 6

    def test_planted_bloom_lemma1(self):
        # Lemma 1: a k-bloom contains exactly k(k-1)/2 butterflies
        for k in (1, 2, 5, 9):
            g = planted_bloom(k)
            assert count_butterflies_total(g) == k * (k - 1) // 2

    def test_planted_bloom_lemma2(self):
        # Lemma 2: each edge of a k-bloom lies in k-1 butterflies
        g = planted_bloom(6)
        support = count_per_edge(g)
        assert set(support.tolist()) == {5}

    def test_planted_bloom_invalid(self):
        with pytest.raises(ValueError):
            planted_bloom(0)

    def test_nested_communities_nesting_enforced(self):
        with pytest.raises(ValueError, match="non-increasing"):
            nested_communities([(3, 3), (5, 5)])

    def test_nested_communities_block_structure(self):
        g = nested_communities([(6, 6, 1.0)], seed=0)
        assert g.num_edges == 36

    def test_nested_communities_densities(self):
        g = nested_communities(
            [(20, 20, 0.2), (6, 6, 1.0)], noise_edges=30,
            num_extra_upper=5, num_extra_lower=5, seed=1,
        )
        # the inner complete block must be fully present
        for u in range(6):
            for v in range(6):
                assert g.has_edge(u, v)
        assert g.num_upper == 25 and g.num_lower == 25

    def test_nested_communities_requires_blocks(self):
        with pytest.raises(ValueError):
            nested_communities([])

    def test_affiliation_determinism(self):
        a = affiliation_bipartite(30, 30, 10, community_upper=4,
                                  community_lower=4, seed=2)
        b = affiliation_bipartite(30, 30, 10, community_upper=4,
                                  community_lower=4, seed=2)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_union_graphs(self):
        g = union_graphs(2, 2, [[(0, 0), (1, 1)], [(0, 0), (0, 1)]])
        assert g.num_edges == 3


class TestPaperFigures:
    def test_figure1_shape(self):
        g = paper_figure1_graph()
        assert g.num_upper == 4 and g.num_lower == 5
        assert g.num_edges == 11

    def test_figure4_shape_and_butterflies(self):
        g = paper_figure4_graph()
        assert g.num_edges == 11
        # B0* (3-bloom) holds 3 butterflies, B1* (2-bloom) holds 1
        assert count_butterflies_total(g) == 4

    def test_hub_edge_example(self):
        g = hub_edge_example(fan=50)
        support = count_per_edge(g)
        eid = g.edge_id(1, 1)
        # the motivating property: exactly one butterfly contains (u1, v1)
        assert support[eid] == 1
        assert g.degree_upper(1) == 51
        assert g.degree_lower(1) == 51

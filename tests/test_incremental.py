"""Localized φ repair: exactness, regions, fallback, patch-in-place."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import bitruss_decomposition
from repro.core.peeling_engine import NO_EXPIRY, peel_region
from repro.datasets import load_dataset
from repro.maintenance import (
    AdaptiveBudget,
    DirtyTrackerError,
    DynamicBipartiteGraph,
    IncrementalBitruss,
)
from repro.service import QueryEngine, build_artifact

ALGORITHM = "bit-bu-csr"


def fresh_phi(dyn):
    """Recompute φ from scratch, keyed by endpoints."""
    graph = dyn.snapshot()
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    return {
        graph.edge_endpoints(e): int(result.phi[e])
        for e in range(graph.num_edges)
    }


def assert_exact(tracker):
    """Tracker φ must be bitwise identical to a full recompute."""
    graph, phi = tracker.phi_snapshot()
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    assert np.array_equal(phi, result.phi), (
        "incremental phi diverged from recompute"
    )


# ------------------------------------------------------------- region peel


class TestPeelRegion:
    def test_empty_region(self):
        assert peel_region(0, [], []).tolist() == []

    def test_isolated_edges(self):
        # No butterflies at all: every edge settles at phi = 0.
        assert peel_region(3, [], []).tolist() == [0, 0, 0]

    def test_single_interior_butterfly(self):
        # Four edges of one butterfly, all interior: classic phi = 1.
        flies = [[0, 1, 2, 3]]
        assert peel_region(4, flies, [NO_EXPIRY]).tolist() == [1, 1, 1, 1]

    def test_exterior_expiry_caps_support(self):
        # One interior edge in two butterflies whose exteriors settle at
        # phi 0 and 5: the level-0 expiry removes the first butterfly
        # before the floor rises, so the edge peels at 1, not 2.
        flies = [[0], [0]]
        assert peel_region(1, flies, [0, 5]).tolist() == [1]

    def test_expiry_never_fires_above_settle_level(self):
        # Expiry far above the edge's own level changes nothing.
        flies = [[0]]
        assert peel_region(1, flies, [100]).tolist() == [1]


# --------------------------------------------------------------- exactness


class TestExactness:
    def test_insert_completing_butterfly(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        tracker = dyn.enable_incremental()
        report = tracker.insert(1, 1)
        assert report.op == "insert"
        assert report.butterflies == 1
        assert report.changed[(1, 1)] == (-1, 1)
        assert report.changed[(0, 0)] == (0, 1)
        assert tracker.phi_of(0, 0) == 1
        assert_exact(tracker)

    def test_delete_breaking_butterfly(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        tracker = dyn.enable_incremental()
        report = tracker.delete(0, 1)
        assert report.op == "delete"
        assert report.butterflies == 1
        assert tracker.phi_of(0, 0) == 0
        assert_exact(tracker)

    def test_insert_toggle_restores_phi(self):
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)])
        tracker = dyn.enable_incremental()
        before = tracker.phi_map()
        tracker.insert(2, 0)
        tracker.delete(2, 0)
        assert tracker.phi_map() == before

    def test_cascading_rise(self):
        # K_{2,4} minus one edge: re-inserting it lifts every edge to 3.
        edges = [(u, v) for u in range(2) for v in range(4)]
        edges.remove((1, 3))
        dyn = DynamicBipartiteGraph(2, 4, edges)
        tracker = dyn.enable_incremental()
        report = tracker.insert(1, 3)
        assert tracker.phi_of(0, 0) == 3
        assert report.region_size == len(edges) + 1
        assert_exact(tracker)

    def test_seeded_churn_small_graphs(self):
        rng = np.random.default_rng(11)
        for _ in range(5):
            dyn = DynamicBipartiteGraph(5, 5)
            tracker = dyn.enable_incremental()
            for _ in range(30):
                u, v = int(rng.integers(0, 5)), int(rng.integers(0, 5))
                if dyn.has_edge(u, v):
                    tracker.delete(u, v)
                else:
                    tracker.insert(u, v)
                assert_exact(tracker)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1,
        max_size=25,
    )
)
def test_random_churn_property(ops):
    """Hypothesis: toggling random edges keeps φ exact after every step."""
    dyn = DynamicBipartiteGraph(5, 5)
    tracker = dyn.enable_incremental()
    for u, v in ops:
        if dyn.has_edge(u, v):
            tracker.delete(u, v)
        else:
            tracker.insert(u, v)
        assert_exact(tracker)


@pytest.mark.parametrize("name", ["marvel", "condmat"])
def test_bundled_dataset_churn(name):
    """Interleaved insert/delete churn on bundled datasets stays bitwise
    exact against a recompute after every step (ISSUE 5 acceptance)."""
    graph = load_dataset(name)
    result = bitruss_decomposition(graph, algorithm=ALGORITHM)
    dyn = DynamicBipartiteGraph(
        graph.num_upper, graph.num_lower, list(graph.edges())
    )
    tracker = dyn.enable_incremental(
        {
            graph.edge_endpoints(e): int(result.phi[e])
            for e in range(graph.num_edges)
        }
    )
    rng = np.random.default_rng(23)
    edges = list(graph.edges())
    steps = 0
    while steps < 8:
        u, v = edges[int(rng.integers(0, len(edges)))]
        if dyn.has_edge(u, v):
            tracker.delete(u, v)
        else:
            tracker.insert(u, v)
        assert_exact(tracker)
        steps += 1


# ------------------------------------------------------- region + fallback


class TestRegionsAndFallback:
    def test_support_zero_ops_touch_nothing(self):
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (1, 1), (2, 2)])
        tracker = dyn.enable_incremental()
        report = tracker.insert(0, 1)
        assert report.butterflies == 0
        assert report.region_size == 0
        report = tracker.delete(0, 1)
        assert report.region_size == 0
        assert_exact(tracker)

    def test_budget_exceeded_marks_dirty(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        tracker = dyn.enable_incremental()
        report = tracker.insert(1, 1, max_region_edges=0)
        assert report.fallback
        assert tracker.dirty
        # The mutation itself is applied; supports stay exact.
        assert dyn.has_edge(1, 1)
        assert dyn.support_of(0, 0) == 1
        with pytest.raises(DirtyTrackerError):
            tracker.phi_of(0, 0)
        with pytest.raises(DirtyTrackerError):
            tracker.phi_snapshot()
        # Further mutations keep applying without repair ...
        report = tracker.delete(0, 1)
        assert report.fallback
        # ... until a reseed restores service.
        tracker.reseed(fresh_phi(dyn))
        assert not tracker.dirty
        assert_exact(tracker)

    def test_rebuild_reseeds_attached_tracker(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        tracker = dyn.enable_incremental()
        tracker.insert(1, 1, max_region_edges=0)
        assert tracker.dirty
        dyn.rebuild()
        assert not tracker.dirty
        assert tracker.phi_of(1, 1) == 1
        assert_exact(tracker)

    def test_reseed_rejects_wrong_coverage(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0)])
        tracker = dyn.enable_incremental()
        with pytest.raises(ValueError, match="cover exactly"):
            tracker.reseed({(0, 0): 0, (1, 1): 0})

    def test_delete_region_descends_in_phi(self):
        # A high-phi core next to a low-phi fringe: deleting a fringe edge
        # must not flood the core.
        edges = [(u, v) for u in range(4) for v in range(4)]  # K44 core
        edges += [(4, 0), (4, 1), (5, 0), (5, 1)]  # 2x2 fringe on v=0,1
        dyn = DynamicBipartiteGraph(6, 4, edges)
        tracker = dyn.enable_incremental()
        report = tracker.delete(4, 0)
        # The fringe edges sit far below the K44 core's phi; the repair
        # region stays in the fringe.
        assert report.region_size <= 6
        assert_exact(tracker)


# --------------------------------------------------------- patch-in-place


class TestPatchInPlace:
    def make_two_component_engine(self):
        # Component A: an open 2x2 (phi 0); component B: K_{3,3} (phi 4).
        edges_a = [(0, 0), (0, 1), (1, 0)]
        edges_b = [(u, v) for u in (2, 3, 4) for v in (2, 3, 4)]
        dyn = DynamicBipartiteGraph(5, 5, edges_a + edges_b)
        dyn.enable_incremental()
        artifact = build_artifact(dyn.snapshot(), algorithm=ALGORITHM)
        engine = QueryEngine(artifact)
        dyn.register_artifact(engine)
        return dyn, engine

    def test_apply_patches_engine_instead_of_stale(self):
        dyn, engine = self.make_two_component_engine()
        outcome = dyn.apply(inserts=[(1, 1)])
        assert outcome.incremental
        assert outcome.patched == 1
        assert outcome.butterfly_delta == 1
        assert not engine.stale  # no StaleArtifactError for readers
        assert engine.phi_of(1, 1) == 1
        fresh = QueryEngine(build_artifact(dyn.snapshot(), algorithm=ALGORITHM))
        assert engine.phi_histogram() == fresh.phi_histogram()
        assert engine.stats()["max_k"] == fresh.stats()["max_k"]

    def test_engine_and_hierarchy_parity_after_churn(self):
        dyn, engine = self.make_two_component_engine()
        rng = np.random.default_rng(3)
        for _ in range(12):
            u, v = int(rng.integers(0, 5)), int(rng.integers(0, 5))
            if dyn.has_edge(u, v):
                outcome = dyn.apply(deletes=[(u, v)])
            else:
                outcome = dyn.apply(inserts=[(u, v)])
            assert outcome.incremental
            fresh = QueryEngine(
                build_artifact(dyn.snapshot(), algorithm=ALGORITHM)
            )
            assert engine.phi_histogram() == fresh.phi_histogram()
            assert engine.stats()["max_k"] == fresh.stats()["max_k"]
            for k in (1, 2, fresh.max_phi):
                assert engine.k_bitruss(k) == fresh.k_bitruss(k)
            for upper in range(5):
                assert engine.max_k(upper=upper) == fresh.max_k(upper=upper)
                if engine.max_k(upper=upper) > 0:
                    ours = engine.community(1, upper=upper)
                    theirs = fresh.community(1, upper=upper)
                    assert sorted(ours.edges) == sorted(theirs.edges)

    def test_selective_cache_invalidation(self):
        dyn, engine = self.make_two_component_engine()
        # Warm vertex-keyed entries on the untouched component B ...
        community_b = engine.community(4, upper=2)
        max_k_b = engine.max_k(upper=3)
        # ... and id-keyed entries that must always drop.
        engine.k_bitruss(4)
        engine.phi_histogram()
        gid_2 = engine.graph.gid_of_upper(2)
        gid_3 = engine.graph.gid_of_upper(3)

        outcome = dyn.apply(inserts=[(1, 1)])  # completes A's butterfly
        assert outcome.incremental
        assert outcome.max_affected_k == 1

        cached_keys = set(engine._cache)
        assert ("community", 4, gid_2) in cached_keys
        assert ("max_k", gid_3) in cached_keys
        assert not any(key[0] == "k_bitruss" for key in cached_keys)
        assert not any(key[0] == "phi_histogram" for key in cached_keys)

        # Surviving entries still answer correctly.
        hits_before = engine.cache_info()["hits"]
        assert engine.max_k(upper=3) == max_k_b
        assert sorted(engine.community(4, upper=2).edges) == sorted(
            community_b.edges
        )
        assert engine.cache_info()["hits"] == hits_before + 2
        fresh = QueryEngine(build_artifact(dyn.snapshot(), algorithm=ALGORITHM))
        assert engine.max_k(upper=3) == fresh.max_k(upper=3)

    def test_apply_plain_path_leaves_watchers_stale(self):
        dyn, engine = self.make_two_component_engine()
        outcome = dyn.apply(inserts=[(1, 1)], incremental=False)
        assert not outcome.incremental
        assert outcome.patched == 0
        assert engine.stale

    def test_apply_fallback_leaves_watchers_stale(self):
        dyn, engine = self.make_two_component_engine()
        outcome = dyn.apply(inserts=[(1, 1)], max_region_fraction=1e-9)
        assert not outcome.incremental
        assert outcome.reports[-1].fallback
        assert engine.stale
        assert dyn.tracker.dirty

    def test_apply_deletes_before_inserts(self):
        dyn, engine = self.make_two_component_engine()
        # Same edge deleted and re-inserted in one batch: net no-op.
        before = dyn.tracker.phi_map()
        outcome = dyn.apply(inserts=[(2, 2)], deletes=[(2, 2)])
        assert outcome.incremental
        assert dyn.tracker.phi_map() == before

    def test_delete_with_no_phi_changes_still_invalidates_its_levels(self):
        """A deleted edge whose removal moves no other φ must still drop
        community caches at its own former levels — those k-bitrusses lost
        the edge itself (regression: max_affected_k ignored the deleted
        edge when `changed` was empty)."""
        # K_{3,3} plus one slack edge (3, 2): the extra edge settles at a
        # positive phi while the core has enough slack that deleting it
        # changes nobody else's phi.
        edges = [(u, v) for u in (0, 1, 2) for v in (0, 1, 2)] + [(3, 0), (3, 1), (3, 2)]
        dyn = DynamicBipartiteGraph(4, 3, edges)
        dyn.enable_incremental()
        artifact = build_artifact(dyn.snapshot(), algorithm=ALGORITHM)
        engine = QueryEngine(artifact)
        dyn.register_artifact(engine)
        phi_32 = engine.phi_of(3, 2)
        assert phi_32 > 0
        # Warm a community cache at the deleted edge's own level.
        before = engine.community(phi_32, upper=0)
        assert [3, 2] in [[u, v] for u, v in before.edges] or (3, 2) in before.edges

        outcome = dyn.apply(deletes=[(3, 2)])
        assert outcome.incremental
        assert outcome.max_affected_k >= phi_32
        after = engine.community(phi_32, upper=0)
        assert (3, 2) not in set(after.edges)
        fresh = QueryEngine(build_artifact(dyn.snapshot(), algorithm=ALGORITHM))
        assert sorted(after.edges) == sorted(
            fresh.community(phi_32, upper=0).edges
        )

    def test_failed_reseed_leaves_tracker_untouched(self):
        """reseed() with non-covering φ must refuse atomically — the
        rebuild(snapshot=pinned) race relies on it (regression: the old
        code clobbered φ before validating)."""
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
        tracker = dyn.enable_incremental()
        snap = dyn.snapshot()
        dyn.apply(inserts=[(2, 0), (2, 1)])
        # Decompose the pre-mutation snapshot: its phi cannot cover the
        # current edges, so the rebuild's reseed attempt is refused ...
        dyn.rebuild(snapshot=snap)
        # ... and the tracker still serves the *current* exact phi.
        assert not tracker.dirty
        assert tracker.phi_of(2, 0) == 2
        assert_exact(tracker)

    def test_batch_patches_watchers_once(self):
        """A batch of several ops bumps each watcher exactly once."""
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        dyn.enable_incremental()
        artifact = build_artifact(dyn.snapshot(), algorithm=ALGORITHM)
        dyn.register_artifact(artifact)
        outcome = dyn.apply_batch(inserts=[(1, 1)], deletes=[(0, 1)])
        assert outcome.incremental
        assert outcome.patched == 1
        assert len(outcome.reports) == 2
        assert artifact.meta["patches"] == 1  # one bump for two ops

    def test_artifact_patch_counts_and_hash(self):
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        dyn.enable_incremental()
        artifact = build_artifact(dyn.snapshot(), algorithm=ALGORITHM)
        dyn.register_artifact(artifact)
        old_hash = artifact.graph_hash
        outcome = dyn.apply(inserts=[(1, 1)])
        assert outcome.patched == 1
        assert not artifact.stale
        assert artifact.meta["patches"] == 1
        assert artifact.graph_hash != old_hash
        assert artifact.graph.num_edges == 4
        assert artifact.max_k == 1


# ------------------------------------------------------------ batch repair


class TestBatchRepair:
    def test_batch_parity_overlapping_regions(self):
        """Re-inserting two missing K_{2,4} edges in one batch: the second
        op's region overlaps the first's pending peel, forcing a conflict
        flush — φ must still land bitwise exact."""
        edges = [(u, v) for u in range(2) for v in range(4)]
        edges.remove((1, 3))
        edges.remove((0, 2))
        dyn = DynamicBipartiteGraph(2, 4, edges)
        tracker = dyn.enable_incremental()
        batch = tracker.apply_batch(inserts=[(1, 3), (0, 2)])
        assert not batch.fallback
        assert len(batch.reports) == 2
        assert tracker.phi_of(0, 0) == 3
        assert_exact(tracker)

    def test_batch_disjoint_regions_merge_into_one_peel(self):
        """Two ops in far-apart components collect butterfly-disjoint
        regions; the flush peels both in ONE multi-seed call."""
        edges_a = [(0, 0), (0, 1), (1, 0)]  # open 2x2
        edges_b = [(u, v) for u in (2, 3, 4) for v in (2, 3, 4)]  # K33
        dyn = DynamicBipartiteGraph(5, 5, edges_a + edges_b)
        tracker = dyn.enable_incremental()
        batch = tracker.apply_batch(
            inserts=[(1, 1)], deletes=[(2, 2)]
        )
        assert not batch.fallback
        assert batch.regions_peeled == 2
        assert batch.merged_peels == 1  # the region union
        assert batch.conflict_flushes == 0
        assert_exact(tracker)

    def test_batch_toggle_same_edge_is_exact(self):
        """delete + insert of the same edge inside one batch (deletes run
        first) restores φ bitwise."""
        edges = [(u, v) for u in (0, 1, 2) for v in (0, 1, 2)]
        dyn = DynamicBipartiteGraph(3, 3, edges)
        tracker = dyn.enable_incremental()
        before = tracker.phi_map()
        batch = tracker.apply_batch(inserts=[(1, 1)], deletes=[(1, 1)])
        assert not batch.fallback
        assert tracker.phi_map() == before
        assert_exact(tracker)

    def test_predicted_fallback_skips_search(self):
        """A cap of 0 routes every op through the predictor: no region
        search, no abort, tracker dirty, mutation still applied."""
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        tracker = dyn.enable_incremental()
        batch = tracker.apply_batch(inserts=[(1, 1)], max_region_edges=0)
        assert batch.fallback
        assert batch.predicted_fallbacks == 1
        assert batch.budget_aborts == 0
        assert tracker.dirty
        assert dyn.has_edge(1, 1)
        assert dyn.support_of(0, 0) == 1

    def test_predict_off_pays_the_abort(self):
        """predict=False runs the search and aborts at the budget — the
        historical behaviour, now opt-in."""
        dyn = DynamicBipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        tracker = dyn.enable_incremental()
        batch = tracker.apply_batch(
            inserts=[(1, 1)], max_region_edges=0, predict=False
        )
        assert batch.fallback
        assert batch.predicted_fallbacks == 0
        assert batch.budget_aborts == 1
        assert tracker.dirty

    def test_fallback_mid_batch_keeps_mirror_exact(self):
        """Ops after a fallback apply support-only; supports stay exact
        and a reseed restores φ service."""
        edges = [(u, v) for u in (0, 1, 2) for v in (0, 1, 2)]
        dyn = DynamicBipartiteGraph(4, 3, edges)
        tracker = dyn.enable_incremental()
        batch = tracker.apply_batch(
            inserts=[(3, 0), (3, 1)], max_region_edges=0
        )
        assert batch.fallback
        # (3, 0) completes no butterfly — trivially exact, no fallback;
        # (3, 1) predicts a blowout under cap 0 and goes dirty.
        assert not batch.reports[0].fallback
        assert batch.reports[1].fallback
        assert dyn.has_edge(3, 0) and dyn.has_edge(3, 1)
        tracker.reseed(fresh_phi(dyn))
        assert_exact(tracker)

    def test_batch_validates_atomically(self):
        """A bad op anywhere rejects the whole batch before any mutation."""
        dyn = DynamicBipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (1, 1)])
        tracker = dyn.enable_incremental()
        before = tracker.phi_map()
        with pytest.raises(ValueError, match="not present"):
            tracker.apply_batch(inserts=[(2, 2)], deletes=[(2, 0)])
        with pytest.raises(ValueError, match="already present"):
            tracker.apply_batch(inserts=[(2, 2), (0, 0)])
        with pytest.raises(ValueError, match="duplicate insert"):
            tracker.apply_batch(inserts=[(2, 2), (2, 2)])
        assert not dyn.has_edge(2, 2)
        assert not tracker.dirty
        assert tracker.phi_map() == before
        assert_exact(tracker)

    def test_bundled_dataset_batch_churn(self):
        """Batched churn on a bundled dataset stays bitwise exact after
        every batch (the batch analogue of ISSUE 5's acceptance)."""
        graph = load_dataset("marvel")
        result = bitruss_decomposition(graph, algorithm=ALGORITHM)
        dyn = DynamicBipartiteGraph(
            graph.num_upper, graph.num_lower, list(graph.edges())
        )
        tracker = dyn.enable_incremental(
            {
                graph.edge_endpoints(e): int(result.phi[e])
                for e in range(graph.num_edges)
            }
        )
        rng = np.random.default_rng(29)
        edges = list(graph.edges())
        for _ in range(3):
            ins, dels, seen = [], [], set()
            while len(seen) < 4:
                u, v = edges[int(rng.integers(0, len(edges)))]
                if (u, v) in seen:
                    continue
                seen.add((u, v))
                (dels if dyn.has_edge(u, v) else ins).append((u, v))
            batch = tracker.apply_batch(ins, dels)
            assert not batch.fallback
            assert_exact(tracker)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1,
        max_size=24,
    ),
    st.integers(2, 6),
)
def test_batched_churn_property(ops, batch_size):
    """Hypothesis: random edge toggles applied in batches — overlapping
    and disjoint regions alike — keep φ bitwise exact after every batch."""
    dyn = DynamicBipartiteGraph(5, 5)
    tracker = dyn.enable_incremental()
    for start in range(0, len(ops), batch_size):
        ins, dels, seen = [], [], set()
        for u, v in ops[start : start + batch_size]:
            if (u, v) in seen:
                continue
            seen.add((u, v))
            (dels if dyn.has_edge(u, v) else ins).append((u, v))
        batch = tracker.apply_batch(ins, dels)
        assert not batch.fallback
        assert len(batch.reports) == len(ins) + len(dels)
        assert_exact(tracker)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        min_size=1,
        max_size=16,
    ),
    st.integers(1, 8),
)
def test_batched_churn_with_budget_property(ops, cap):
    """Hypothesis: under a tight budget (predicted-fallback mixes), a
    batch either stays exact or goes dirty with the mirror still exact —
    and a reseed always restores bitwise parity."""
    dyn = DynamicBipartiteGraph(5, 5)
    tracker = dyn.enable_incremental()
    for start in range(0, len(ops), 4):
        ins, dels, seen = [], [], set()
        for u, v in ops[start : start + 4]:
            if (u, v) in seen:
                continue
            seen.add((u, v))
            (dels if dyn.has_edge(u, v) else ins).append((u, v))
        batch = tracker.apply_batch(ins, dels, max_region_edges=cap)
        if tracker.dirty:
            tracker.reseed(fresh_phi(dyn))
        assert_exact(tracker)


# --------------------------------------------------------- adaptive budget


class TestAdaptiveBudget:
    def test_cold_start_uses_ceiling(self):
        budget = AdaptiveBudget()
        assert budget.cap(1000, 0.15) == 150

    def test_ewma_tightens_ceiling(self):
        budget = AdaptiveBudget()
        for _ in range(4):
            budget.observe(10)
        assert budget.ewma == pytest.approx(10.0)
        # 8x headroom over a size-10 EWMA beats the 150-edge ceiling.
        assert budget.cap(1000, 0.15) == 80
        budget.observe(100)
        cap = budget.cap(1000, 0.15)
        assert 64 < cap <= 150

    def test_never_exceeds_ceiling(self):
        budget = AdaptiveBudget()
        budget.observe(10_000)
        assert budget.cap(1000, 0.15) == 150

    def test_unbounded_without_fraction(self):
        """No ceiling means no budget at all — adaptivity only ever
        tightens a finite ceiling (regression: the EWMA used to impose
        a cap on unbounded callers)."""
        budget = AdaptiveBudget()
        budget.observe(2)
        assert budget.cap(1000, None) is None

    def test_disabled_pins_static_ceiling(self):
        budget = AdaptiveBudget(enabled=False)
        budget.observe(2)
        assert budget.cap(1000, 0.15) == 150

    def test_zero_regions_ignored(self):
        budget = AdaptiveBudget()
        budget.observe(0)
        assert budget.ewma is None and budget.samples == 0

"""Hierarchy correctness against brute-force k-bitruss extraction."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.api import bitruss_decomposition
from repro.core.bitruss import k_bitruss_direct
from repro.datasets import load_dataset
from repro.graph.generators import erdos_renyi_bipartite
from repro.service.hierarchy import build_hierarchy

from tests.conftest import bipartite_graphs


def brute_force_component(graph, edge_ids, gid):
    """Connected component of the edge subset touching ``gid`` (BFS)."""
    adj = {}
    for eid in edge_ids:
        u, v = graph.edge_endpoints(eid)
        gu, gv = graph.gid_of_upper(u), graph.gid_of_lower(v)
        adj.setdefault(gu, []).append((gv, eid))
        adj.setdefault(gv, []).append((gu, eid))
    if gid not in adj:
        return set()
    seen = {gid}
    stack = [gid]
    edges = set()
    while stack:
        node = stack.pop()
        for nbr, eid in adj[node]:
            edges.add(eid)
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    return edges


def check_hierarchy(graph):
    result = bitruss_decomposition(graph, algorithm="bu-csr")
    hierarchy = build_hierarchy(graph, result.phi)
    hierarchy.validate()

    phi = result.phi
    levels = sorted({int(k) for k in phi} | {0, result.max_k + 1})
    for k in levels:
        expected = set(result.edges_with_phi_at_least(k))
        got = hierarchy.k_bitruss_edges(k)
        assert set(got.tolist()) == expected, f"H_{k} edge set differs"
        assert got.tolist() == sorted(got.tolist())

        # Every vertex's component must equal the BFS component of H_k.
        edge_ids = sorted(expected)
        for gid in range(graph.num_vertices):
            expected_comp = brute_force_component(graph, edge_ids, gid)
            got_comp = set(hierarchy.community_edges(gid, k).tolist())
            assert got_comp == expected_comp, (
                f"component of gid {gid} at k={k} differs"
            )
    return hierarchy


def test_figure4_hierarchy(figure4):
    hierarchy = check_hierarchy(figure4)
    assert hierarchy.max_k == 2


def test_figure1_hierarchy(figure1):
    check_hierarchy(figure1)


def test_random_graph_hierarchy():
    check_hierarchy(erdos_renyi_bipartite(12, 10, 50, seed=3))


@settings(max_examples=25, deadline=None)
@given(bipartite_graphs(max_upper=6, max_lower=6, max_edges=18))
def test_hierarchy_matches_brute_force(graph):
    check_hierarchy(graph)


@pytest.mark.parametrize("name", ["github", "marvel", "condmat", "d-label"])
def test_dataset_k_bitruss_matches_direct(name):
    graph = load_dataset(name)
    result = bitruss_decomposition(graph, algorithm="bu-csr")
    hierarchy = build_hierarchy(graph, result.phi)
    hierarchy.validate()
    for k in (1, 2, 3, result.max_k):
        assert hierarchy.k_bitruss_edges(k).tolist() == k_bitruss_direct(
            graph, k
        ), f"{name}: H_{k} differs from the iterated-filter reference"


@pytest.mark.parametrize("name", ["github", "marvel"])
def test_dataset_components_match_bfs(name):
    graph = load_dataset(name)
    result = bitruss_decomposition(graph, algorithm="bu-csr")
    hierarchy = build_hierarchy(graph, result.phi)
    rng = np.random.default_rng(11)
    for k in (2, max(3, result.max_k // 2), result.max_k):
        edge_ids = result.edges_with_phi_at_least(k)
        for u in rng.choice(graph.num_upper, size=6, replace=False):
            gid = graph.gid_of_upper(int(u))
            expected = brute_force_component(graph, edge_ids, gid)
            got = set(hierarchy.community_edges(gid, k).tolist())
            assert got == expected


def test_empty_graph():
    from repro.graph.bipartite import BipartiteGraph

    graph = BipartiteGraph(3, 3, [])
    hierarchy = build_hierarchy(graph, np.empty(0, dtype=np.int64))
    hierarchy.validate()
    assert hierarchy.num_nodes == 0
    assert hierarchy.k_bitruss_edges(0).tolist() == []
    assert hierarchy.community_edges(0, 1).tolist() == []
    assert hierarchy.max_k_of_vertex(0) == 0


def test_parent_levels_strictly_decrease(figure4):
    result = bitruss_decomposition(figure4)
    hierarchy = build_hierarchy(figure4, result.phi)
    for node in range(hierarchy.num_nodes):
        parent = int(hierarchy.node_parent[node])
        if parent >= 0:
            assert hierarchy.node_level[parent] < hierarchy.node_level[node]


def test_hierarchy_path_is_nested(figure4):
    result = bitruss_decomposition(figure4)
    hierarchy = build_hierarchy(figure4, result.phi)
    for eid in range(figure4.num_edges):
        path = hierarchy.hierarchy_path(eid)
        assert path[0][0] == result.phi[eid]
        levels = [level for level, _node in path]
        assert levels == sorted(levels, reverse=True)
        # Each enclosing component contains the previous one.
        previous = None
        for _level, node in path:
            edges = set(hierarchy.component_edges(node).tolist())
            assert eid in edges
            if previous is not None:
                assert previous <= edges
            previous = edges


def test_level_sizes_match_result_hierarchy(figure4):
    result = bitruss_decomposition(figure4)
    hierarchy = build_hierarchy(figure4, result.phi)
    assert hierarchy.level_sizes() == result.hierarchy()
